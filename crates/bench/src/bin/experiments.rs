//! Regenerates every table and figure of the paper's evaluation section,
//! runs declarative experiment plans, and records/replays trace files.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tw-bench --release --bin experiments -- all
//! cargo run -p tw-bench --release --bin experiments -- fig5_1a headline
//! cargo run -p tw-bench --release --bin experiments -- --paper all
//! cargo run -p tw-bench --release --bin experiments -- all --json
//! cargo run -p tw-bench --release --bin experiments -- all --cache .exp-cache
//! cargo run -p tw-bench --release --bin experiments -- fig5_2 --network flit
//!
//! cargo run -p tw-bench --release --bin experiments -- plan builtin --tiny > spec.json
//! cargo run -p tw-bench --release --bin experiments -- plan builtin --tiny --network analytic,flit > both.json
//! cargo run -p tw-bench --release --bin experiments -- plan show spec.json
//! cargo run -p tw-bench --release --bin experiments -- plan run spec.json --cache .exp-cache
//!
//! cargo run -p tw-bench --release --bin experiments -- trace record out.trace --bench FFT
//! cargo run -p tw-bench --release --bin experiments -- trace replay out.trace
//! cargo run -p tw-bench --release --bin experiments -- trace info out.trace
//! cargo run -p tw-bench --release --bin experiments -- trace diff a.trace b.trace
//! cargo run -p tw-bench --release --bin experiments -- trace roundtrip --tiny
//!
//! cargo run -p tw-bench --release --bin experiments -- fuzz --seeds 50
//! cargo run -p tw-bench --release --bin experiments -- fuzz --self-test
//!
//! cargo run -p tw-bench --release --bin experiments -- profile spec.json --top 10 --trace out.jsonl
//! cargo run -p tw-bench --release --bin experiments -- profile diff a.jsonl b.jsonl
//!
//! cargo run -p tw-bench --release --bin experiments -- serve --socket /tmp/exp.sock
//! cargo run -p tw-bench --release --bin experiments -- submit spec.json --socket /tmp/exp.sock
//! cargo run -p tw-bench --release --bin experiments -- stats --socket /tmp/exp.sock
//! cargo run -p tw-bench --release --bin experiments -- metrics --socket /tmp/exp.sock
//! cargo run -p tw-bench --release --bin experiments -- loadgen --socket /tmp/exp.sock --requests 32
//! cargo run -p tw-bench --release --bin experiments -- shutdown --socket /tmp/exp.sock
//! ```
//!
//! With no arguments, `all` at the scaled profile is assumed (the figure
//! commands are sugar over the built-in full-matrix spec, run through a
//! `Session`). `--json` additionally writes a machine-readable
//! `BENCH_results.json` (matrix wall time, headline averages, per-figure
//! values) to the current directory; `--cache DIR` routes the run through
//! the content-addressed result cache. See EXPERIMENTS.md for the `plan`,
//! `trace` and daemon walkthroughs, and DESIGN.md §13 for the wire
//! protocol.
//!
//! Exit codes (uniform across every subcommand; `experiments help` prints
//! the same contract):
//!
//! * **0** — success;
//! * **1** — a *check* failed: `trace diff` divergence, a `trace roundtrip`
//!   mismatch, fuzz invariant violations, a failed fuzz self-test;
//! * **2** — the *request* was invalid or could not be carried out: unknown
//!   flags/figures/subcommands, unreadable or malformed inputs, specs that
//!   do not compile, runs that fail, output that produces no cells, daemon
//!   connection errors.

use denovo_waste::{
    protocol_by_name, ExperimentError, ExperimentMatrix, ExperimentSpec, PlanOutcome, RunOutcome,
    ScaleProfile, Session, SimConfig, SimReport, Simulator, WorkloadSet,
};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use tw_obs::{FlightRecorder, SpanSink};
use tw_scenarios::{detect, golden_execute, synthesize, DifferentialRunner, Mutation, SynthConfig};
use tw_trace::TraceDocument;
use tw_types::{NetworkModelKind, ProtocolKind};
use tw_workloads::{BenchmarkKind, Workload};

/// A fresh flight recorder plus a sink rooted at `track` — the arm-recording
/// helper every `--record`/`profile` path shares.
fn armed_recorder(track: &str) -> (Arc<FlightRecorder>, SpanSink) {
    let rec = Arc::new(FlightRecorder::new());
    let sink = SpanSink::new(Arc::clone(&rec) as _, track);
    (rec, sink)
}

/// Writes a recorder's trace JSONL to `path`.
fn write_trace(rec: &FlightRecorder, path: &str) -> Result<(), String> {
    std::fs::write(path, rec.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
    eprintln!("wrote {path} ({} spans)", rec.len());
    Ok(())
}

fn print_headline(outcome: &RunOutcome) -> Result<(), ExperimentError> {
    let h = outcome.headline()?;
    println!("== Headline cross-benchmark averages (paper value in parentheses) ==");
    println!(
        "DBypFull traffic vs MESI:    {:.3}  (paper ~0.605, i.e. a 39.5% reduction)",
        h.dbypfull_traffic_vs_mesi
    );
    println!(
        "DBypFull traffic vs MMemL1:  {:.3}  (paper ~0.648, i.e. a 35.2% reduction)",
        h.dbypfull_traffic_vs_mmeml1
    );
    println!(
        "DBypFull traffic vs DFlexL1: {:.3}  (paper ~0.811, i.e. an 18.9% reduction)",
        h.dbypfull_traffic_vs_dflexl1
    );
    println!(
        "DeNovo traffic vs MESI:      {:.3}  (paper ~0.861, i.e. a 13.9% reduction)",
        h.denovo_traffic_vs_mesi
    );
    println!(
        "DBypFull time vs MESI:       {:.3}  (paper ~0.895, i.e. a 10.5% reduction)",
        h.dbypfull_time_vs_mesi
    );
    println!(
        "MMemL1 time vs MESI:         {:.3}  (paper ~0.962, i.e. a 3.8% reduction)",
        h.mmeml1_time_vs_mesi
    );
    println!(
        "DBypFull residual waste:     {:.3}  (paper ~0.088)",
        h.dbypfull_waste_fraction
    );
    println!(
        "MESI overhead fraction:      {:.3}  (paper ~0.136)",
        h.mesi_overhead_fraction
    );
    Ok(())
}

const FIGURES: [&str; 13] = [
    "all",
    "table4_1",
    "table4_2",
    "fig5_1a",
    "fig5_1b",
    "fig5_1c",
    "fig5_1d",
    "fig5_2",
    "fig5_3a",
    "fig5_3b",
    "fig5_3c",
    "figupdate",
    "headline",
];

fn scale_from(args: &[String]) -> ScaleProfile {
    if args.iter().any(|a| a == "--paper") {
        ScaleProfile::Paper
    } else if args.iter().any(|a| a == "--tiny") {
        ScaleProfile::Tiny
    } else {
        ScaleProfile::Scaled
    }
}

/// Extracts the value following a `--flag` from `args`, removing both.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(at) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if at + 1 >= args.len() || args[at + 1].starts_with("--") {
        return Err(format!("{flag} needs a value"));
    }
    let value = args.remove(at + 1);
    args.remove(at);
    Ok(Some(value))
}

/// Parses a comma-separated `--network` value into model kinds (unknown
/// names are rejected with the name in the error, per the by_name rule).
fn parse_networks(list: &str) -> Result<Vec<NetworkModelKind>, String> {
    list.split(',')
        .map(|n| NetworkModelKind::by_name(n.trim()))
        .collect()
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("trace") {
        return trace_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("fuzz") {
        return fuzz_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("plan") {
        return plan_main(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("profile") {
        return profile_main(&args[1..]);
    }
    if let Some(cmd @ ("serve" | "submit" | "stats" | "metrics" | "shutdown" | "loadgen")) =
        args.first().map(String::as_str)
    {
        let cmd = cmd.to_string();
        return daemon_main(&cmd, &args[1..]);
    }
    if args.first().map(String::as_str) == Some("help")
        || args.iter().any(|a| a == "--help" || a == "-h")
    {
        return print_help();
    }
    let cache = match take_flag_value(&mut args, "--cache") {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let record = match take_flag_value(&mut args, "--record") {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // The figure commands run one network model (the benchmark-keyed figure
    // rows can't represent two models per benchmark); a multi-model sweep
    // is a plan (`plan builtin --network analytic,flit` + `plan run`).
    let network = match take_flag_value(&mut args, "--network").and_then(|v| match v {
        None => Ok(None),
        Some(name) => NetworkModelKind::by_name(&name).map(Some),
    }) {
        Ok(n) => n,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // Reject anything unrecognized up front: a typo'd `--json` or figure
    // name must not silently cost a multi-minute matrix run. The rejected
    // token itself is always named in the error.
    for a in &args {
        if a.starts_with("--")
            && !matches!(a.as_str(), "--paper" | "--scaled" | "--tiny" | "--json")
        {
            eprintln!(
                "unknown flag `{a}`; expected --paper | --scaled | --tiny | --json | --cache DIR | --network NAME | --record FILE"
            );
            return ExitCode::from(2);
        }
        if !a.starts_with("--") && !FIGURES.contains(&a.as_str()) {
            eprintln!(
                "unknown figure `{a}`; expected one of: {} (or the `plan` / `trace` / `fuzz` subcommands)",
                FIGURES.join(" ")
            );
            return ExitCode::from(2);
        }
    }
    let scale = scale_from(&args);
    let json = args.iter().any(|a| a == "--json");
    let mut wanted: Vec<String> = args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }

    eprintln!("running the experiment matrix ({scale:?} profile); this takes a little while...");
    let started = Instant::now();
    // The figure commands are sugar over the built-in full-matrix spec run
    // through a (optionally cached) session.
    let mut spec = ExperimentSpec::full_matrix(scale);
    if let Some(n) = network {
        spec.networks = vec![n];
    }
    let mut session = Session::new();
    if let Some(dir) = &cache {
        session = session.with_cache_dir(dir);
    }
    let flight = record.as_ref().map(|_| armed_recorder("cli"));
    if let Some((_, sink)) = &flight {
        session = session.with_recorder(sink.clone());
    }
    let outcome = match session
        .run(&spec, &WorkloadSet::new())
        .and_then(RunOutcome::from_plan)
    {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let matrix_wall = started.elapsed();
    if let (Some(path), Some((rec, _))) = (&record, &flight) {
        if let Err(msg) = write_trace(rec, path) {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    eprintln!(
        "matrix of {} cells finished in {:.2?}",
        outcome.cells(),
        matrix_wall
    );
    if cache.is_some() {
        let s = outcome.plan().cache;
        eprintln!(
            "cache: {} hits / {} misses ({:.0}% hit rate)",
            s.hits,
            s.misses,
            100.0 * s.hit_rate()
        );
    }

    match emit_figures(&outcome, scale, json, &wanted, matrix_wall) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

fn emit_figures(
    outcome: &RunOutcome,
    scale: ScaleProfile,
    json: bool,
    wanted: &[String],
    matrix_wall: std::time::Duration,
) -> Result<ExitCode, ExperimentError> {
    let emit_all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| emit_all || wanted.iter().any(|w| w == name);

    // Computed once: both the JSON document and the printed figure use it.
    let update_fig =
        (json || want("figupdate")).then(|| tw_bench::update_vs_invalidate_figure(scale));

    if json {
        let path = "BENCH_results.json";
        let update = update_fig.as_ref().expect("computed when json is set");
        let doc = tw_bench::results_json(outcome, scale, update)?;
        std::fs::write(path, doc)
            .map_err(|e| ExperimentError::Io(format!("cannot write {path}: {e}")))?;
        println!("wrote {path}");
        // Wall clock lives in a sidecar so the results document itself
        // byte-diffs across reruns (CI compares the whole file).
        let timing_path = "BENCH_results.timing.json";
        std::fs::write(timing_path, tw_bench::bench_timing_json(matrix_wall))
            .map_err(|e| ExperimentError::Io(format!("cannot write {timing_path}: {e}")))?;
        println!("wrote {timing_path}");
    }

    // Every requested figure must contribute at least one cell; a run that
    // prints nothing exits nonzero so scripts and CI can rely on it.
    let mut emitted_cells = 0usize;
    let mut emit = |fig: denovo_waste::FigureTable| {
        emitted_cells += fig.rows().len();
        println!("{fig}");
    };

    if want("table4_1") {
        emit(outcome.table_4_1(scale));
    }
    if want("table4_2") {
        emit(outcome.table_4_2());
    }
    if want("fig5_1a") {
        emit(outcome.fig_5_1a()?);
    }
    if want("fig5_1b") {
        emit(outcome.fig_5_1b()?);
    }
    if want("fig5_1c") {
        emit(outcome.fig_5_1c()?);
    }
    if want("fig5_1d") {
        emit(outcome.fig_5_1d()?);
    }
    if want("fig5_2") {
        emit(outcome.fig_5_2()?);
    }
    if want("fig5_3a") {
        emit(outcome.fig_5_3a()?);
    }
    if want("fig5_3b") {
        emit(outcome.fig_5_3b()?);
    }
    if want("fig5_3c") {
        emit(outcome.fig_5_3c()?);
    }
    if want("figupdate") {
        emit(
            update_fig
                .clone()
                .expect("computed when figupdate is wanted"),
        );
    }
    if want("headline") {
        print_headline(outcome)?;
        emitted_cells += outcome.cells();
    }
    if emitted_cells == 0 {
        // An invalid request (exit 2, like every other malformed input),
        // not a failed check (exit 1) — see the exit-code contract in the
        // module docs.
        eprintln!(
            "error: requested output ({}) produced no cells",
            wanted.join(" ")
        );
        return Ok(ExitCode::from(2));
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// The `plan` subcommand family: builtin / show / run.
// ---------------------------------------------------------------------------

fn plan_main(args: &[String]) -> ExitCode {
    let Some(sub) = args.first().map(String::as_str) else {
        eprintln!("usage: experiments plan <builtin|show|run> ...");
        return ExitCode::from(2);
    };
    let result = match sub {
        "builtin" => plan_builtin(&args[1..]),
        "show" => plan_show(&args[1..]),
        "run" => plan_run(&args[1..]),
        s => {
            eprintln!("unknown plan subcommand `{s}`; expected builtin | show | run");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

/// `plan builtin`: emit the built-in full-matrix spec as JSON — the exact
/// plan the figure commands are sugar over, and a convenient starting point
/// for hand-edited sweeps. `--network analytic,flit` adds the network axis
/// (the one-command way to author the analytic-vs-flit Fig 5.2 sweep).
fn plan_builtin(args: &[String]) -> Result<ExitCode, ExperimentError> {
    let mut args = args.to_vec();
    let networks = take_flag_value(&mut args, "--network")
        .and_then(|v| v.map(|list| parse_networks(&list)).transpose())
        .map_err(ExperimentError::InvalidSpec)?;
    for a in &args {
        if !matches!(a.as_str(), "--tiny" | "--scaled" | "--paper") {
            return Err(ExperimentError::InvalidSpec(format!(
                "unknown flag `{a}`; expected --tiny | --scaled | --paper | --network LIST"
            )));
        }
    }
    let mut spec = ExperimentSpec::full_matrix(scale_from(&args));
    if let Some(networks) = networks {
        spec.networks = networks;
    }
    print!("{}", spec.to_json());
    Ok(ExitCode::SUCCESS)
}

/// `plan show <spec.json>`: print every sweep axis of the spec (protocols,
/// workloads, system variants, network models), then the compiled cells
/// with their identity (workload ref, variant geometry, protocol, cache
/// key) — nothing is simulated.
fn plan_show(args: &[String]) -> Result<ExitCode, ExperimentError> {
    let [path] = args else {
        return Err(ExperimentError::InvalidSpec(
            "usage: experiments plan show <spec.json>".to_string(),
        ));
    };
    let spec = ExperimentSpec::load(Path::new(path))?;
    let plan = spec.compile(&WorkloadSet::new())?;
    let session = Session::new();
    println!(
        "plan `{}` ({} scale): {} protocols x {} rows = {} cells",
        plan.name,
        spec.scale.name(),
        plan.protocols.len(),
        plan.rows.len(),
        plan.cells.len()
    );
    println!(
        "axis protocols: {}",
        spec.protocols
            .iter()
            .map(|p| p.name())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "axis workloads: {}",
        spec.workloads
            .iter()
            .map(|w| w.name.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!(
        "axis variants:  {}",
        if spec.variants.is_empty() {
            "base (implicit)".to_string()
        } else {
            spec.variants
                .iter()
                .map(|v| v.label.as_str())
                .collect::<Vec<_>>()
                .join(" ")
        }
    );
    println!(
        "axis networks:  {}",
        if spec.networks.is_empty() {
            "analytic (default)".to_string()
        } else {
            spec.networks
                .iter()
                .map(|n| n.name())
                .collect::<Vec<_>>()
                .join(" ")
        }
    );
    println!("baseline:       {}", spec.baseline.protocol().name());
    for (label, sys) in &plan.variants {
        println!(
            "variant `{label}`: {} tiles, {} B lines, {} KB L1, {} KB L2/slice, {} network",
            sys.tiles(),
            sys.cache.line_bytes,
            sys.cache.l1_bytes / 1024,
            sys.cache.l2_slice_bytes / 1024,
            sys.network.name(),
        );
    }
    for cell in &plan.cells {
        println!(
            "  {:<28} {:<10} workload {:<24} key {}",
            cell.label,
            cell.protocol.name(),
            cell.workload_ref.to_string(),
            session.key_of(cell),
        );
    }
    Ok(ExitCode::SUCCESS)
}

/// `plan run <spec.json>`: compile and execute a plan, printing every
/// figure; `--cache DIR` routes through the result cache, `--json OUT`
/// writes the deterministic figures document, `--stats OUT` the cache
/// statistics.
fn plan_run(args: &[String]) -> Result<ExitCode, ExperimentError> {
    let mut args = args.to_vec();
    let bad = |msg: String| ExperimentError::InvalidSpec(msg);
    let cache = take_flag_value(&mut args, "--cache").map_err(bad)?;
    let json_out = take_flag_value(&mut args, "--json").map_err(bad)?;
    let stats_out = take_flag_value(&mut args, "--stats").map_err(bad)?;
    let record = take_flag_value(&mut args, "--record").map_err(bad)?;
    let [path] = args.as_slice() else {
        return Err(ExperimentError::InvalidSpec(
            "usage: experiments plan run <spec.json> [--cache DIR] [--json OUT] [--stats OUT] [--record FILE]"
                .to_string(),
        ));
    };
    let spec = ExperimentSpec::load(Path::new(path))?;
    let mut session = Session::new();
    if let Some(dir) = &cache {
        session = session.with_cache_dir(dir);
    }
    let flight = record.as_ref().map(|_| armed_recorder("plan"));
    if let Some((_, sink)) = &flight {
        session = session.with_recorder(sink.clone());
    }
    eprintln!("running plan `{}` ({:?} scale)...", spec.name, spec.scale);
    let started = Instant::now();
    let outcome = session.run(&spec, &WorkloadSet::new())?;
    eprintln!(
        "plan of {} cells finished in {:.2?}",
        outcome.cells(),
        started.elapsed()
    );
    if let (Some(path), Some((rec, _))) = (&record, &flight) {
        write_trace(rec, path).map_err(ExperimentError::Io)?;
    }
    print_plan_outcome(&outcome, json_out.as_deref(), stats_out.as_deref())
}

fn print_plan_outcome(
    outcome: &PlanOutcome,
    json_out: Option<&str>,
    stats_out: Option<&str>,
) -> Result<ExitCode, ExperimentError> {
    for fig in outcome.all_figures()? {
        println!("{fig}");
    }
    let s = outcome.cache;
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate)",
        s.hits,
        s.misses,
        100.0 * s.hit_rate()
    );
    if let Some(path) = json_out {
        std::fs::write(path, tw_bench::plan_figures_json(outcome)?)
            .map_err(|e| ExperimentError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = stats_out {
        std::fs::write(path, tw_bench::cache_stats_json(&outcome.name, &s))
            .map_err(|e| ExperimentError::Io(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote {path}");
    }
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// The `profile` subcommand: run a plan with the flight recorder armed and
// report where the time went; diff two trace files modulo timing.
// ---------------------------------------------------------------------------

fn profile_main(args: &[String]) -> ExitCode {
    let result = if args.first().map(String::as_str) == Some("diff") {
        profile_diff(&args[1..])
    } else {
        profile_run(args)
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// `profile <spec.json>`: execute a plan with recording on and print the
/// hot-spot summary (top-N hottest cells, time per outcome class,
/// cells/sec). `--trace OUT` additionally writes the span trace JSONL.
fn profile_run(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let cache = take_flag_value(&mut args, "--cache")?;
    let trace_out = take_flag_value(&mut args, "--trace")?;
    let top = take_flag_value(&mut args, "--top")?
        .map(|n| n.parse::<usize>().map_err(|e| format!("--top: {e}")))
        .transpose()?
        .unwrap_or(10);
    let [path] = args.as_slice() else {
        return Err(
            "usage: experiments profile <spec.json> [--cache DIR] [--top N] [--trace OUT]"
                .to_string(),
        );
    };
    let spec = ExperimentSpec::load(Path::new(path)).map_err(|e| e.to_string())?;
    let (rec, sink) = armed_recorder("profile");
    let mut session = Session::new().with_recorder(sink);
    if let Some(dir) = &cache {
        session = session.with_cache_dir(dir);
    }
    eprintln!("profiling plan `{}` ({:?} scale)...", spec.name, spec.scale);
    let started = Instant::now();
    let outcome = session
        .run(&spec, &WorkloadSet::new())
        .map_err(|e| e.to_string())?;
    let wall = started.elapsed();
    if let Some(out) = &trace_out {
        write_trace(&rec, out)?;
    }
    print_profile(&rec, outcome.cells(), wall, top);
    Ok(ExitCode::SUCCESS)
}

/// Prints the hot-spot report out of a recorded run: wall throughput, the
/// per-outcome-class time budget, and the top-N hottest cells by recorded
/// wall time (probe + simulate + store).
fn print_profile(rec: &FlightRecorder, cells: usize, wall: std::time::Duration, top: usize) {
    let spans = rec.spans();
    let mut cell_rows: Vec<(String, String, u64)> = Vec::new();
    let mut classes = std::collections::BTreeMap::<String, (u64, u64)>::new();
    for s in spans.iter().filter(|s| s.name == "cell") {
        let outcome = s
            .attrs
            .iter()
            .find(|(k, _)| k == "outcome")
            .map(|(_, v)| match v {
                tw_obs::AttrValue::Str(s) => s.clone(),
                tw_obs::AttrValue::U64(n) => n.to_string(),
            })
            .unwrap_or_else(|| "?".to_string());
        let us: u64 = s.timing.iter().map(|(_, v)| v).sum();
        let class = classes.entry(outcome.clone()).or_default();
        class.0 += 1;
        class.1 += us;
        cell_rows.push((s.track.clone(), outcome, us));
    }
    let secs = wall.as_secs_f64().max(1e-9);
    println!(
        "profile: {} cells in {:.2?} — {:.1} cells/sec, {} spans recorded",
        cells,
        wall,
        cells as f64 / secs,
        rec.len(),
    );
    println!("time per outcome class:");
    for (class, (count, us)) in &classes {
        println!(
            "  {:<10} {:>5} cells  {:>10.1} ms total  {:>8.1} ms avg",
            class,
            count,
            *us as f64 / 1e3,
            *us as f64 / 1e3 / (*count).max(1) as f64,
        );
    }
    // Ties break by track so the listing order is reproducible.
    cell_rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.cmp(&b.0)));
    println!(
        "hottest cells (top {} of {} by recorded time):",
        top.min(cell_rows.len()),
        cell_rows.len(),
    );
    for (i, (track, outcome, us)) in cell_rows.iter().take(top).enumerate() {
        println!(
            "  {:>2}. {:<44} {:>10.1} ms  ({outcome})",
            i + 1,
            track,
            *us as f64 / 1e3,
        );
    }
}

/// `profile diff <a> <b>`: compare two span traces modulo the quarantined
/// `timing` sub-objects. Exit 0 when identical, 1 at the first divergence,
/// 2 when either file is corrupt/truncated.
fn profile_diff(args: &[String]) -> Result<ExitCode, String> {
    let [a, b] = args else {
        return Err("usage: experiments profile diff <a.jsonl> <b.jsonl>".to_string());
    };
    let ta = std::fs::read_to_string(a).map_err(|e| format!("cannot read {a}: {e}"))?;
    let tb = std::fs::read_to_string(b).map_err(|e| format!("cannot read {b}: {e}"))?;
    match tw_obs::diff_traces(&ta, &tb).map_err(|e| format!("invalid trace: {e}"))? {
        None => {
            println!("identical modulo timing: {a} == {b}");
            Ok(ExitCode::SUCCESS)
        }
        Some(divergence) => {
            println!("traces diverge: {divergence}");
            Ok(ExitCode::FAILURE)
        }
    }
}

// ---------------------------------------------------------------------------
// The daemon subcommand family: serve / submit / stats / metrics / shutdown /
// loadgen.
// ---------------------------------------------------------------------------

fn daemon_main(cmd: &str, args: &[String]) -> ExitCode {
    let result = match cmd {
        "serve" => daemon_serve(args),
        "submit" => daemon_submit(args),
        "stats" => daemon_stats(args),
        "metrics" => daemon_metrics(args),
        "shutdown" => daemon_shutdown(args),
        "loadgen" => daemon_loadgen(args),
        _ => unreachable!("dispatch checked the command"),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// The `--socket PATH` flag every daemon subcommand requires.
fn take_socket(args: &mut Vec<String>) -> Result<std::path::PathBuf, String> {
    take_flag_value(args, "--socket")?
        .map(std::path::PathBuf::from)
        .ok_or_else(|| "--socket PATH is required".to_string())
}

fn reject_unknown(args: &[String], expected: &str) -> Result<(), String> {
    match args.first() {
        None => Ok(()),
        Some(a) => Err(format!("unknown argument `{a}`; expected {expected}")),
    }
}

/// `serve`: run the experiments daemon in the foreground until a client
/// sends `shutdown`. `--cache DIR` defaults to `.exp-cache` (the CLI
/// convention); `--no-cache` runs memory-only.
fn daemon_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let socket = take_socket(&mut args)?;
    let mut config = tw_bench::daemon::Config::new(socket);
    config.cache_dir = Some(
        take_flag_value(&mut args, "--cache")?
            .unwrap_or_else(|| ".exp-cache".to_string())
            .into(),
    );
    if let Some(at) = args.iter().position(|a| a == "--no-cache") {
        args.remove(at);
        config.cache_dir = None;
    }
    let num = |v: Option<String>, flag: &str| -> Result<Option<usize>, String> {
        v.map(|n| n.parse::<usize>().map_err(|e| format!("{flag}: {e}")))
            .transpose()
    };
    if let Some(n) = num(take_flag_value(&mut args, "--workers")?, "--workers")? {
        config.workers = n;
    }
    if let Some(n) = num(take_flag_value(&mut args, "--queue")?, "--queue")? {
        config.queue_cap = n;
    }
    config.record = take_flag_value(&mut args, "--record")?.map(Into::into);
    reject_unknown(
        &args,
        "--socket PATH | --cache DIR | --no-cache | --workers N | --queue N | --record FILE",
    )?;
    eprintln!(
        "serving experiments on {} ({} workers, queue of {}, cache {})",
        config.socket.display(),
        config.workers.max(1),
        config.queue_cap,
        config
            .cache_dir
            .as_ref()
            .map(|d| d.display().to_string())
            .unwrap_or_else(|| "disabled".to_string()),
    );
    tw_bench::daemon::serve(&config)?;
    if let Some(path) = &config.record {
        eprintln!("wrote {}", path.display());
    }
    eprintln!("daemon shut down cleanly");
    Ok(ExitCode::SUCCESS)
}

/// `submit <spec.json>`: send one experiment spec to a running daemon and
/// print its per-request accounting; `--json OUT` writes the returned
/// figures document (byte-identical to `plan run --json` of the same spec).
fn daemon_submit(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let socket = take_socket(&mut args)?;
    let json_out = take_flag_value(&mut args, "--json")?;
    let [path] = args.as_slice() else {
        return Err("usage: experiments submit <spec.json> --socket PATH [--json OUT]".to_string());
    };
    let spec_text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut client = tw_bench::daemon::client::Client::connect(&socket)?;
    let reply = client.submit(&spec_text)?;
    println!(
        "plan `{}`: cells={} hits={} misses={} coalesced={} queue_us={} exec_us={}",
        reply.plan,
        reply.cells,
        reply.hits,
        reply.misses,
        reply.coalesced,
        reply.queue_us,
        reply.exec_us,
    );
    if let Some(out) = json_out {
        std::fs::write(&out, &reply.figures).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `stats`: print a running daemon's service metrics as pretty JSON.
fn daemon_stats(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let socket = take_socket(&mut args)?;
    reject_unknown(&args, "--socket PATH")?;
    let mut client = tw_bench::daemon::client::Client::connect(&socket)?;
    print!("{}", client.stats()?.pretty());
    Ok(ExitCode::SUCCESS)
}

/// `metrics`: print a running daemon's Prometheus text exposition —
/// counters, gauges, and the queue-wait / latency histograms.
fn daemon_metrics(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let socket = take_socket(&mut args)?;
    reject_unknown(&args, "--socket PATH")?;
    let mut client = tw_bench::daemon::client::Client::connect(&socket)?;
    print!("{}", client.metrics()?);
    Ok(ExitCode::SUCCESS)
}

/// `shutdown`: ask a running daemon to drain its queue and exit.
fn daemon_shutdown(args: &[String]) -> Result<ExitCode, String> {
    let mut args = args.to_vec();
    let socket = take_socket(&mut args)?;
    reject_unknown(&args, "--socket PATH")?;
    let mut client = tw_bench::daemon::client::Client::connect(&socket)?;
    client.shutdown()?;
    println!("daemon at {} is shutting down", socket.display());
    Ok(ExitCode::SUCCESS)
}

/// `loadgen`: drive a running daemon with N concurrent clients submitting
/// the same plan and report service throughput — the measured-QPS answer to
/// "how fast does this serve sharing-pattern sweeps". `--json OUT` writes
/// the `denovo-waste/service-baseline/v1` document committed as
/// `BENCH_service_baseline.json`.
fn daemon_loadgen(args: &[String]) -> Result<ExitCode, String> {
    use denovo_waste::Json;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let mut args = args.to_vec();
    let socket = take_socket(&mut args)?;
    let json_out = take_flag_value(&mut args, "--json")?;
    let spec_file = take_flag_value(&mut args, "--spec")?;
    let num = |v: Option<String>, flag: &str, default: u64| -> Result<u64, String> {
        v.map(|n| n.parse::<u64>().map_err(|e| format!("{flag}: {e}")))
            .transpose()
            .map(|n| n.unwrap_or(default))
    };
    let requests = num(take_flag_value(&mut args, "--requests")?, "--requests", 16)?;
    let clients = num(take_flag_value(&mut args, "--clients")?, "--clients", 2)?.max(1);
    let scale = scale_from(&args);
    args.retain(|a| !matches!(a.as_str(), "--tiny" | "--scaled" | "--paper"));
    reject_unknown(
        &args,
        "--socket PATH | --requests N | --clients N | --spec FILE | --tiny|--scaled|--paper | --json OUT",
    )?;
    if requests == 0 {
        return Err("--requests 0 would measure nothing".to_string());
    }
    let spec_text = match &spec_file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => ExperimentSpec::full_matrix(scale).to_json(),
    };

    eprintln!(
        "loadgen: {requests} requests from {clients} clients against {}...",
        socket.display()
    );
    let next = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let socket = socket.clone();
            let spec_text = spec_text.clone();
            let next = Arc::clone(&next);
            std::thread::spawn(move || -> Result<(u64, u64, u64, u64, u64, u64), String> {
                let mut client = tw_bench::daemon::client::Client::connect(&socket)?;
                let (mut cells, mut hits, mut misses, mut coalesced) = (0, 0, 0, 0);
                let (mut lat_sum_us, mut lat_max_us) = (0u64, 0u64);
                while next.fetch_add(1, Ordering::Relaxed) < requests {
                    let t = Instant::now();
                    let reply = client.submit(&spec_text)?;
                    let us = t.elapsed().as_micros() as u64;
                    lat_sum_us += us;
                    lat_max_us = lat_max_us.max(us);
                    cells += reply.cells;
                    hits += reply.hits;
                    misses += reply.misses;
                    coalesced += reply.coalesced;
                }
                Ok((cells, hits, misses, coalesced, lat_sum_us, lat_max_us))
            })
        })
        .collect();
    let (mut cells, mut hits, mut misses, mut coalesced) = (0u64, 0u64, 0u64, 0u64);
    let (mut lat_sum_us, mut lat_max_us) = (0u64, 0u64);
    for handle in handles {
        let (c, h, m, co, sum, max) = handle.join().map_err(|_| "a client panicked")??;
        cells += c;
        hits += h;
        misses += m;
        coalesced += co;
        lat_sum_us += sum;
        lat_max_us = lat_max_us.max(max);
    }
    let wall = started.elapsed();

    // The daemon-side view (queue depth/peak, service-lifetime rates).
    let mut client = tw_bench::daemon::client::Client::connect(&socket)?;
    let stats = client.stats()?;
    let daemon_fields: Vec<(String, Json)> = stats
        .as_obj()
        .map_err(|e| format!("stats response: {e}"))?
        .iter()
        .filter(|(k, _)| k != "status" && k != "op")
        .cloned()
        .collect();
    let queue_peak = stats.get("queue_peak").and_then(|v| v.as_u64().ok());

    let wall_us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
    let secs = (wall_us as f64 / 1e6).max(1e-9);
    let cells_per_sec = cells as f64 / secs;
    let requests_per_sec = requests as f64 / secs;
    let hit_rate = if cells == 0 {
        0.0
    } else {
        (hits + coalesced) as f64 / cells as f64
    };
    println!(
        "loadgen: {requests} requests x {} cells in {:.2?} — {:.1} cells/sec, {:.1} req/sec, hit rate {:.3}, queue peak {}",
        cells / requests.max(1),
        wall,
        cells_per_sec,
        requests_per_sec,
        hit_rate,
        queue_peak.map(|q| q.to_string()).unwrap_or_default(),
    );

    if let Some(out) = json_out {
        // Deterministic request accounting up front; every wall-clock
        // measurement is quarantined in the `timing` block (the same
        // convention as the bench-results sidecar and the flight-recorder
        // span grammar), so tooling can byte-diff the document after
        // dropping exactly one sub-object.
        let doc = Json::Obj(vec![
            (
                "schema".to_string(),
                Json::str("denovo-waste/service-baseline/v2"),
            ),
            ("requests".to_string(), Json::UInt(requests)),
            ("clients".to_string(), Json::UInt(clients)),
            ("cells".to_string(), Json::UInt(cells)),
            ("hits".to_string(), Json::UInt(hits)),
            ("misses".to_string(), Json::UInt(misses)),
            ("coalesced".to_string(), Json::UInt(coalesced)),
            ("hit_rate".to_string(), Json::Str(format!("{hit_rate:.4}"))),
            (
                "timing".to_string(),
                Json::Obj(vec![
                    ("wall_us".to_string(), Json::UInt(wall_us)),
                    (
                        "cells_per_sec".to_string(),
                        Json::Str(format!("{cells_per_sec:.2}")),
                    ),
                    (
                        "requests_per_sec".to_string(),
                        Json::Str(format!("{requests_per_sec:.2}")),
                    ),
                    (
                        "latency_avg_us".to_string(),
                        Json::UInt(lat_sum_us / requests),
                    ),
                    ("latency_max_us".to_string(), Json::UInt(lat_max_us)),
                ]),
            ),
            ("daemon".to_string(), Json::Obj(daemon_fields)),
        ]);
        std::fs::write(&out, doc.pretty()).map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }
    Ok(ExitCode::SUCCESS)
}

fn print_help() -> ExitCode {
    println!(
        "\
experiments — regenerate the paper's tables/figures, run declarative plans,
record/replay traces, fuzz the protocol registry, profile where the time
goes, and serve plans as traffic.

usage:
  experiments [FIGURE..] [--tiny|--scaled|--paper] [--json] [--cache DIR] [--network NAME] [--record FILE]
      figures: {figures}

  experiments plan builtin [--tiny|--scaled|--paper] [--network LIST]
  experiments plan show <spec.json>
  experiments plan run <spec.json> [--cache DIR] [--json OUT] [--stats OUT] [--record FILE]

  experiments profile <spec.json> [--cache DIR] [--top N] [--trace OUT]
  experiments profile diff <a.jsonl> <b.jsonl>

  experiments trace record <out.trace> [--bench NAME] [--protocol NAME] [--text]
  experiments trace replay <in.trace> [--protocol NAME]
  experiments trace info <in.trace>
  experiments trace diff <a.trace> <b.trace>
  experiments trace roundtrip [--bench NAME] [--protocol NAME]

  experiments fuzz [--seeds N] [--start N] [--streaming-every N] [--network NAME] [--record FILE]
  experiments fuzz --self-test

  experiments serve --socket PATH [--cache DIR] [--no-cache] [--workers N] [--queue N] [--record FILE]
  experiments submit <spec.json> --socket PATH [--json OUT]
  experiments stats --socket PATH
  experiments metrics --socket PATH
  experiments loadgen --socket PATH [--requests N] [--clients N] [--spec FILE] [--json OUT]
  experiments shutdown --socket PATH

`--record FILE` arms the flight recorder: spans (cells, engine phases,
daemon requests) are captured and written to FILE as trace JSONL
(schema `denovo-waste/flight/v1`, deterministic modulo the quarantined
`timing` sub-objects). Recording never changes results: the figures,
BENCH_results.json and fuzz digests are byte-identical with and without it.

exit codes (uniform across every subcommand):
  0  success
  1  a check failed: trace diff divergence, profile diff divergence,
     roundtrip mismatch, fuzz invariant violations, failed fuzz self-test
  2  invalid or failed request: unknown flags/figures/subcommands,
     unreadable or malformed inputs (including corrupt/truncated span
     traces), specs that do not compile, runs that fail, output producing
     no cells, daemon connection errors

See EXPERIMENTS.md for walkthroughs, DESIGN.md §13 for the daemon wire
protocol, and DESIGN.md §15 for the span taxonomy and trace grammar.",
        figures = FIGURES.join(" ")
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// The `trace` subcommand family: record / replay / info / diff / roundtrip.
// ---------------------------------------------------------------------------

struct TraceArgs {
    positional: Vec<String>,
    scale: ScaleProfile,
    bench: BenchmarkKind,
    protocol: Option<ProtocolKind>,
    text: bool,
}

/// Parses the flags shared by the trace subcommands. `Err` carries the
/// message to print before exiting with status 2.
fn parse_trace_args(args: &[String]) -> Result<TraceArgs, String> {
    let mut out = TraceArgs {
        positional: Vec::new(),
        scale: scale_from(args),
        bench: BenchmarkKind::Fft,
        protocol: None,
        text: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--paper" | "--scaled" | "--tiny" => {}
            "--text" => out.text = true,
            "--bench" => {
                let name = it.next().ok_or("--bench needs a benchmark name")?;
                // `by_name` rejects unknown names with a message listing
                // every accepted one; kinds without a generator (custom,
                // synthesized) are rejected later by `try_workload` with a
                // message naming the replacement workflow.
                out.bench = BenchmarkKind::by_name(name)?;
            }
            "--protocol" => {
                let name = it.next().ok_or("--protocol needs a protocol name")?;
                out.protocol = Some(protocol_by_name(name).ok_or_else(|| {
                    let names: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.name()).collect();
                    format!(
                        "unknown protocol `{name}`; expected one of: {}",
                        names.join(" ")
                    )
                })?);
            }
            a if a.starts_with("--") => {
                return Err(format!(
                    "unknown flag `{a}`; expected --tiny | --scaled | --paper | --text | --bench NAME | --protocol NAME"
                ));
            }
            _ => out.positional.push(a.clone()),
        }
    }
    Ok(out)
}

fn summarize(report: &SimReport) {
    println!(
        "{:<10} {:>14} cycles  {:>16.0} flit-hops  waste {:>6.3}  dram {:>10}",
        report.protocol.name(),
        report.total_cycles,
        report.total_flit_hops(),
        report.waste_traffic_fraction(),
        report.dram_accesses,
    );
}

fn load_workload(path: &str) -> Result<Workload, String> {
    let doc =
        TraceDocument::load(Path::new(path)).map_err(|e| format!("cannot read {path}: {e}"))?;
    Workload::from_trace(doc).map_err(|e| format!("{path} is not replayable: {e}"))
}

fn trace_main(args: &[String]) -> ExitCode {
    let Some(sub) = args.first().map(String::as_str) else {
        eprintln!("usage: experiments trace <record|replay|info|diff|roundtrip> ...");
        return ExitCode::from(2);
    };
    let parsed = match parse_trace_args(&args[1..]) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match sub {
        "record" => trace_record(&parsed),
        "replay" => trace_replay(&parsed),
        "info" => trace_info(&parsed),
        "diff" => trace_diff(&parsed),
        "roundtrip" => trace_roundtrip(&parsed),
        s => {
            eprintln!("unknown trace subcommand `{s}`; expected record | replay | info | diff | roundtrip");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            // Unreadable/invalid inputs are bad requests (exit 2); the
            // checking subcommands return exit 1 through `Ok(FAILURE)`
            // above when a *comparison* fails.
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

/// `trace record <out>`: simulate one (protocol × benchmark) cell with
/// capture armed and persist the serviced reference stream.
fn trace_record(args: &TraceArgs) -> Result<ExitCode, String> {
    let [out] = args.positional.as_slice() else {
        return Err("usage: experiments trace record <out.trace> [--bench NAME] [--protocol NAME] [--tiny|--scaled|--paper] [--text]".into());
    };
    let protocol = args.protocol.unwrap_or(ProtocolKind::Mesi);
    let system = args.scale.system();
    let workload = args.scale.try_workload(args.bench, system.tiles())?;
    let cfg = SimConfig::new(protocol).with_system(system);
    eprintln!(
        "recording {} / {} at the {:?} profile...",
        args.bench, protocol, args.scale
    );
    let (report, captured) = Simulator::new(cfg, &workload).run_captured();
    let doc = captured.to_trace();
    doc.save(Path::new(out), args.text)
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    let stats = doc.total_stats();
    println!(
        "wrote {out}: {} cores, {} mem ops, {} barriers/core ({} format)",
        doc.cores(),
        stats.mem_ops(),
        stats.barriers / doc.cores().max(1) as u64,
        if args.text { "text" } else { "binary" },
    );
    summarize(&report);
    Ok(ExitCode::SUCCESS)
}

/// `trace replay <in>`: replay a trace file under one protocol (or all
/// nine) and print per-protocol summaries.
fn trace_replay(args: &TraceArgs) -> Result<ExitCode, String> {
    let [input] = args.positional.as_slice() else {
        return Err("usage: experiments trace replay <in.trace> [--protocol NAME] [--tiny|--scaled|--paper]".into());
    };
    let workload = load_workload(input)?;
    let system = args.scale.system();
    if workload.cores() != system.tiles() {
        return Err(format!(
            "{input} was recorded for {} cores but the {:?} system has {} tiles",
            workload.cores(),
            args.scale,
            system.tiles()
        ));
    }
    println!(
        "replaying {input} ({}, \"{}\") at the {:?} profile",
        workload.kind, workload.input, args.scale
    );
    match args.protocol {
        Some(protocol) => {
            let cfg = SimConfig::new(protocol).with_system(system);
            summarize(&Simulator::new(cfg, &workload).run());
        }
        None => {
            let matrix = ExperimentMatrix::subset(ProtocolKind::ALL.to_vec(), vec![], args.scale);
            let kind = workload.kind;
            let outcome = matrix.run_on(vec![workload]).map_err(|e| e.to_string())?;
            for &p in &ProtocolKind::ALL {
                summarize(outcome.report(kind, p).map_err(|e| e.to_string())?);
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// `trace info <in>`: header, region annotations and per-core statistics.
fn trace_info(args: &TraceArgs) -> Result<ExitCode, String> {
    let [input] = args.positional.as_slice() else {
        return Err("usage: experiments trace info <in.trace>".into());
    };
    let doc =
        TraceDocument::load(Path::new(input)).map_err(|e| format!("cannot read {input}: {e}"))?;
    println!("trace:     {input}");
    println!("benchmark: {}", doc.benchmark);
    println!("input:     {}", doc.input);
    println!("cores:     {}", doc.cores());
    println!("regions:   {}", doc.regions.len());
    let mut accesses_by_region = std::collections::BTreeMap::<_, u64>::new();
    for op in doc.streams.iter().flatten() {
        if let Some(region) = op.region() {
            *accesses_by_region.entry(region).or_default() += 1;
        }
    }
    for r in doc.regions.iter() {
        let mut notes = vec![format!(
            "{} accesses",
            accesses_by_region.get(&r.id).copied().unwrap_or(0)
        )];
        if r.bypass.bypasses_l2() {
            notes.push("bypass".to_string());
        }
        if let Some(c) = &r.comm {
            notes.push(format!("flex {} useful words/obj", c.useful_words()));
        }
        println!(
            "  {} `{}` {:#x}+{} bytes ({})",
            r.id,
            r.name,
            r.base.byte(),
            r.bytes,
            notes.join(", ")
        );
    }
    let total = doc.total_stats();
    for (core, s) in doc.stats().iter().enumerate() {
        println!(
            "  core {core:>2}: {:>9} ops ({:>9} LD, {:>9} ST, {:>9} compute cycles, {} barriers)",
            s.ops, s.loads, s.stores, s.compute_cycles, s.barriers
        );
    }
    println!(
        "total:     {} ops, {} mem ops, {} barriers/core",
        total.ops,
        total.mem_ops(),
        total.barriers / doc.cores().max(1) as u64
    );
    Ok(ExitCode::SUCCESS)
}

/// `trace diff <a> <b>`: byte-level determinism oracle. Exits 0 only when
/// the two traces are structurally identical.
fn trace_diff(args: &TraceArgs) -> Result<ExitCode, String> {
    let [a, b] = args.positional.as_slice() else {
        return Err("usage: experiments trace diff <a.trace> <b.trace>".into());
    };
    let da = TraceDocument::load(Path::new(a)).map_err(|e| format!("cannot read {a}: {e}"))?;
    let db = TraceDocument::load(Path::new(b)).map_err(|e| format!("cannot read {b}: {e}"))?;
    match tw_trace::diff(&da, &db) {
        None => {
            println!("identical: {a} == {b}");
            Ok(ExitCode::SUCCESS)
        }
        Some(divergence) => {
            println!("traces diverge at {divergence}");
            Ok(ExitCode::FAILURE)
        }
    }
}

/// `trace roundtrip`: the end-to-end CI oracle. Records a cell, encodes the
/// capture through both formats, replays the decoded trace, and fails unless
/// the replayed `SimReport` is bit-identical to the recorded one.
fn trace_roundtrip(args: &TraceArgs) -> Result<ExitCode, String> {
    if !args.positional.is_empty() {
        return Err("usage: experiments trace roundtrip [--bench NAME] [--protocol NAME] [--tiny|--scaled|--paper]".into());
    }
    let protocol = args.protocol.unwrap_or(ProtocolKind::DBypFull);
    let system = args.scale.system();
    let workload = args.scale.try_workload(args.bench, system.tiles())?;
    let cfg = SimConfig::new(protocol).with_system(system.clone());
    eprintln!(
        "roundtrip: {} / {} at the {:?} profile",
        args.bench, protocol, args.scale
    );
    let (recorded, captured) = Simulator::new(cfg.clone(), &workload).run_captured();

    // Binary codec round trip.
    let doc = captured.to_trace();
    let bytes = doc.to_binary_bytes().map_err(|e| e.to_string())?;
    let decoded = TraceDocument::from_bytes(&bytes).map_err(|e| e.to_string())?;
    if let Some(d) = tw_trace::diff(&doc, &decoded) {
        println!("FAIL: binary codec round trip diverges at {d}");
        return Ok(ExitCode::FAILURE);
    }
    // Text codec round trip.
    let reparsed = TraceDocument::from_text(&doc.to_text()).map_err(|e| e.to_string())?;
    if let Some(d) = tw_trace::diff(&doc, &reparsed) {
        println!("FAIL: text codec round trip diverges at {d}");
        return Ok(ExitCode::FAILURE);
    }

    let replayed_wl = Workload::from_trace(decoded).map_err(|e| e.to_string())?;
    let replayed = Simulator::new(cfg, &replayed_wl).run();
    if recorded != replayed {
        println!(
            "FAIL: replayed report differs (recorded {} cycles / {:.0} flit-hops, replayed {} cycles / {:.0} flit-hops)",
            recorded.total_cycles,
            recorded.total_flit_hops(),
            replayed.total_cycles,
            replayed.total_flit_hops()
        );
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "OK: record -> encode({} bytes) -> decode -> replay is bit-identical ({} cycles, {:.0} flit-hops)",
        bytes.len(),
        recorded.total_cycles,
        recorded.total_flit_hops()
    );
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// The `fuzz` subcommand: randomized workload synthesis + differential oracle.
// ---------------------------------------------------------------------------

struct FuzzArgs {
    /// Number of seeds to sweep.
    seeds: u64,
    /// First seed (so CI shards and bisections can window the space).
    start: u64,
    /// Every k-th seed synthesizes the fully-bypass streaming preset, which
    /// additionally checks the `DBypFull ≤ MESI` dominance invariant.
    streaming_every: u64,
    scale: ScaleProfile,
    /// Network model the primary sweep runs under (the runner checks the
    /// cross-model identity against every other registered model either
    /// way).
    network: NetworkModelKind,
    self_test: bool,
    /// When set, the primary sweep runs with a flight recorder attached and
    /// the trace JSONL is written here after the sweep.
    record: Option<String>,
}

fn parse_fuzz_args(args: &[String]) -> Result<FuzzArgs, String> {
    let mut out = FuzzArgs {
        seeds: 20,
        start: 0,
        streaming_every: 5,
        // Fuzzing wants breadth over fidelity: default to the tiny geometry
        // (the scale flags below still override).
        scale: ScaleProfile::Tiny,
        network: NetworkModelKind::default(),
        self_test: false,
        record: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, String> {
            it.next()
                .ok_or(format!("{flag} needs a number"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag}: {e}"))
        };
        match a.as_str() {
            "--seeds" => out.seeds = num("--seeds")?,
            "--start" => out.start = num("--start")?,
            "--streaming-every" => out.streaming_every = num("--streaming-every")?,
            "--tiny" => out.scale = ScaleProfile::Tiny,
            "--scaled" => out.scale = ScaleProfile::Scaled,
            "--paper" => out.scale = ScaleProfile::Paper,
            "--network" => {
                let name = it.next().ok_or("--network needs a model name")?;
                out.network = NetworkModelKind::by_name(name)?;
            }
            "--self-test" => out.self_test = true,
            "--record" => {
                out.record = Some(
                    it.next()
                        .ok_or("--record needs an output path")?
                        .to_string(),
                );
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}`; expected --seeds N | --start N | --streaming-every N | --tiny | --scaled | --paper | --network NAME | --record FILE | --self-test"
                ));
            }
        }
    }
    // An empty window (degenerate shard arithmetic) or an overflowing one
    // (which would wrap to an empty range in release builds) would report a
    // false-green sweep of zero workloads.
    if out.seeds == 0 && !out.self_test {
        return Err("--seeds 0 would sweep nothing and report a vacuous success".to_string());
    }
    if out.start.checked_add(out.seeds).is_none() {
        return Err("--start + --seeds overflows the u64 seed space".to_string());
    }
    Ok(out)
}

/// Order-sensitive digest of the per-protocol summaries, so the printed
/// line (and therefore the byte-diffed fuzz transcript) is sensitive to any
/// change in any protocol's cycles, traffic or waste accounting. Built on
/// the oracle's fingerprint fold so there is exactly one mixer to maintain.
fn summary_digest(summaries: &[tw_scenarios::ProtocolSummary]) -> u64 {
    let mut h: u64 = 0xd1f7_ed5c_e4a2_1097;
    for s in summaries {
        h = tw_scenarios::oracle::fold(
            h,
            [
                s.total_cycles,
                s.flit_hops.to_bits(),
                s.waste_fraction.to_bits(),
                0,
            ],
        );
    }
    h
}

/// Digest of the per-protocol *traffic* numbers only (flit-hops + waste
/// fraction, no cycles) — the quantity that must be byte-identical across
/// network models. CI runs the sweep once per model and diffs exactly these
/// fields out of the transcripts.
fn traffic_digest(summaries: &[tw_scenarios::ProtocolSummary]) -> u64 {
    let mut h: u64 = 0x7aff_1c0d_1935_7a0b;
    for s in summaries {
        h = tw_scenarios::oracle::fold(
            h,
            [s.flit_hops.to_bits(), s.waste_fraction.to_bits(), 0, 0],
        );
    }
    h
}

/// `fuzz`: sweep synthesized workloads across the full protocol registry and
/// diff every run against the golden functional model. The stdout transcript
/// is deterministic in the seed window — CI byte-diffs two runs — and the
/// exit code is nonzero on any invariant violation.
fn fuzz_main(args: &[String]) -> ExitCode {
    let parsed = match parse_fuzz_args(args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if parsed.self_test {
        return fuzz_self_test();
    }
    let mut runner = DifferentialRunner::new(parsed.scale).with_network(parsed.network);
    let flight = parsed.record.as_ref().map(|_| armed_recorder("fuzz"));
    if let Some((_, sink)) = &flight {
        runner = runner.with_recorder(sink.clone());
    }
    let started = Instant::now();
    let mut violations = 0usize;
    for seed in parsed.start..parsed.start + parsed.seeds {
        let streaming = parsed.streaming_every != 0 && seed % parsed.streaming_every == 0;
        let wl = if streaming {
            SynthConfig::streaming(seed).build()
        } else {
            synthesize(seed)
        };
        let outcome = runner.check(&wl);
        println!(
            "seed={seed} {} ops={} phases={} fp={:016x} digest={:016x} traffic={:016x} {}",
            if streaming { "streaming" } else { "general" },
            outcome.oracle.mem_ops(),
            outcome.oracle.phases,
            outcome.oracle.fingerprint,
            summary_digest(&outcome.summaries),
            traffic_digest(&outcome.summaries),
            if outcome.ok() { "ok" } else { "VIOLATION" },
        );
        for v in &outcome.violations {
            println!("  violation: {v}");
            violations += 1;
        }
    }
    println!(
        "fuzz: {} workloads x {} protocols, {} violations",
        parsed.seeds,
        runner.protocols.len(),
        violations
    );
    eprintln!(
        "fuzz swept {} seeds in {:.2?}",
        parsed.seeds,
        started.elapsed()
    );
    if let (Some(path), Some((rec, _))) = (&parsed.record, &flight) {
        if let Err(msg) = write_trace(rec, path) {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    }
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `fuzz --self-test`: prove the oracle catches injected coherence
/// violations by applying every known-bad mutation class and requiring a
/// detection for each. Guards against the differential runner silently
/// degrading into a rubber stamp.
fn fuzz_self_test() -> ExitCode {
    let mut undetected = 0usize;
    // Per-class application counts: a class that never found a site was
    // never exercised, and a self-test that skipped a whole detection layer
    // must fail rather than rubber-stamp it.
    let mut applied_per_class = [0usize; Mutation::ALL.len()];
    for seed in 0..8u64 {
        let wl = synthesize(seed);
        let reference = match golden_execute(&wl) {
            Ok(r) => r,
            Err(race) => {
                println!("self-test seed={seed}: reference workload races: {race}");
                return ExitCode::FAILURE;
            }
        };
        for (class, m) in Mutation::ALL.into_iter().enumerate() {
            let Some(mutated) = m.apply(&wl) else {
                println!("self-test seed={seed} {}: no site", m.name());
                continue;
            };
            applied_per_class[class] += 1;
            match detect(&reference, &mutated) {
                Some(d) => {
                    println!(
                        "self-test seed={seed} {}: detected ({})",
                        m.name(),
                        d.label()
                    );
                }
                None => {
                    println!("self-test seed={seed} {}: UNDETECTED", m.name());
                    undetected += 1;
                }
            }
        }
    }
    let mut unexercised = 0usize;
    for (class, m) in Mutation::ALL.into_iter().enumerate() {
        if applied_per_class[class] == 0 {
            println!("self-test: class {} was NEVER EXERCISED", m.name());
            unexercised += 1;
        }
    }
    println!(
        "self-test: {} mutations over {} classes, {} undetected, {} unexercised",
        applied_per_class.iter().sum::<usize>(),
        Mutation::ALL.len(),
        undetected,
        unexercised
    );
    if undetected == 0 && unexercised == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
