//! Pins the `experiments` exit-code contract (see the bin's module docs and
//! `experiments help`): 0 = success, 1 = a check failed, 2 = invalid or
//! failed request. Daemon clients and CI scripts branch on these.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-exit-codes-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_in(dir: &PathBuf, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .current_dir(dir)
        .args(args)
        .output()
        .unwrap();
    (
        out.status.code().expect("not signal-killed"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_exits_zero_and_documents_the_contract() {
    let dir = scratch("help");
    for args in [&["help"][..], &["--help"][..]] {
        let (code, stdout, _) = run_in(&dir, args);
        assert_eq!(code, 0, "{args:?}");
        assert!(stdout.contains("exit codes"), "{args:?} must document them");
        assert!(stdout.contains("serve --socket"), "daemon commands listed");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_requests_exit_two() {
    let dir = scratch("invalid");
    let cases: &[&[&str]] = &[
        // Unknown flag / figure on the figure runner (checked before any
        // simulation, so these are instant).
        &["--bogus"],
        &["fig9_9"],
        // Plan-layer errors.
        &["plan", "run", "no-such-spec.json"],
        &["plan", "frobnicate"],
        // Trace-layer errors: unreadable input, unknown flag.
        &["trace", "info", "no-such.trace"],
        &["trace", "record", "out.trace", "--bogus"],
        // Fuzz misuse: a vacuous sweep is rejected up front.
        &["fuzz", "--seeds", "0"],
        // Profile misuse: unreadable spec, missing operands.
        &["profile", "no-such-spec.json"],
        &["profile", "diff", "only-one.jsonl"],
        &["profile", "diff", "missing-a.jsonl", "missing-b.jsonl"],
        // Daemon client without a daemon.
        &["stats", "--socket", "no-such.sock"],
        &["submit", "no-such-spec.json", "--socket", "no-such.sock"],
        &["shutdown", "--socket", "no-such.sock"],
        &["serve"], // --socket is required
    ];
    for args in cases {
        let (code, _, stderr) = run_in(&dir, args);
        assert_eq!(code, 2, "{args:?} must exit 2; stderr:\n{stderr}");
        assert!(!stderr.trim().is_empty(), "{args:?} must explain itself");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_diff_separates_check_failure_from_bad_request() {
    let dir = scratch("trace-diff");
    // Two identical recordings: the recorder is deterministic, so diff
    // passes (exit 0); a recording of a different benchmark diverges
    // (exit 1, the check-failed code, distinct from the bad-request 2).
    let (code, _, stderr) = run_in(
        &dir,
        &["trace", "record", "a.trace", "--tiny", "--bench", "FFT"],
    );
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = run_in(
        &dir,
        &["trace", "record", "b.trace", "--tiny", "--bench", "FFT"],
    );
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = run_in(
        &dir,
        &["trace", "record", "c.trace", "--tiny", "--bench", "LU"],
    );
    assert_eq!(code, 0, "{stderr}");

    let (code, stdout, _) = run_in(&dir, &["trace", "diff", "a.trace", "b.trace"]);
    assert_eq!(code, 0, "identical traces: {stdout}");
    let (code, stdout, _) = run_in(&dir, &["trace", "diff", "a.trace", "c.trace"]);
    assert_eq!(code, 1, "diverging traces are a failed check: {stdout}");
    let (code, _, _) = run_in(&dir, &["trace", "diff", "a.trace", "missing.trace"]);
    assert_eq!(
        code, 2,
        "an unreadable operand is a bad request, not a diff"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_separates_check_failure_from_bad_request() {
    let dir = scratch("profile");
    // A 2-cell tiny spec keeps the two profiled runs fast.
    std::fs::write(
        dir.join("spec.json"),
        denovo_waste::ExperimentSpec::subset(
            vec![
                tw_types::ProtocolKind::Mesi,
                tw_types::ProtocolKind::DBypFull,
            ],
            vec![tw_workloads::BenchmarkKind::Fft],
            denovo_waste::ScaleProfile::Tiny,
        )
        .to_json(),
    )
    .unwrap();

    // Profile run: exit 0, hot-spot report on stdout, trace written.
    let (code, stdout, stderr) = run_in(
        &dir,
        &["profile", "spec.json", "--top", "5", "--trace", "a.jsonl"],
    );
    assert_eq!(code, 0, "{stderr}");
    assert!(stdout.contains("hottest cells"), "{stdout}");
    assert!(stdout.contains("cells/sec"), "{stdout}");
    let (code, _, stderr) = run_in(&dir, &["profile", "spec.json", "--trace", "b.jsonl"]);
    assert_eq!(code, 0, "{stderr}");

    // Identical runs diff clean modulo timing (exit 0).
    let (code, stdout, _) = run_in(&dir, &["profile", "diff", "a.jsonl", "b.jsonl"]);
    assert_eq!(code, 0, "identical modulo timing: {stdout}");

    // A genuinely different trace is a failed check (exit 1, not 2).
    let divergent = std::fs::read_to_string(dir.join("a.jsonl"))
        .unwrap()
        .replace("\"protocol\":\"MESI\"", "\"protocol\":\"XESI\"");
    std::fs::write(dir.join("c.jsonl"), divergent).unwrap();
    let (code, stdout, _) = run_in(&dir, &["profile", "diff", "a.jsonl", "c.jsonl"]);
    assert_eq!(code, 1, "diverging traces are a failed check: {stdout}");

    // A truncated trace is a bad request (exit 2) with the named error.
    let full = std::fs::read_to_string(dir.join("a.jsonl")).unwrap();
    let truncated: String = full.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(dir.join("trunc.jsonl"), truncated).unwrap();
    let (code, _, stderr) = run_in(&dir, &["profile", "diff", "a.jsonl", "trunc.jsonl"]);
    assert_eq!(code, 2, "a truncated trace is a bad request: {stderr}");
    assert!(stderr.contains("truncated"), "names the failure: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}
