//! Pins the `experiments` exit-code contract (see the bin's module docs and
//! `experiments help`): 0 = success, 1 = a check failed, 2 = invalid or
//! failed request. Daemon clients and CI scripts branch on these.

use std::path::PathBuf;
use std::process::Command;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-exit-codes-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_in(dir: &PathBuf, args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .current_dir(dir)
        .args(args)
        .output()
        .unwrap();
    (
        out.status.code().expect("not signal-killed"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_exits_zero_and_documents_the_contract() {
    let dir = scratch("help");
    for args in [&["help"][..], &["--help"][..]] {
        let (code, stdout, _) = run_in(&dir, args);
        assert_eq!(code, 0, "{args:?}");
        assert!(stdout.contains("exit codes"), "{args:?} must document them");
        assert!(stdout.contains("serve --socket"), "daemon commands listed");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn invalid_requests_exit_two() {
    let dir = scratch("invalid");
    let cases: &[&[&str]] = &[
        // Unknown flag / figure on the figure runner (checked before any
        // simulation, so these are instant).
        &["--bogus"],
        &["fig9_9"],
        // Plan-layer errors.
        &["plan", "run", "no-such-spec.json"],
        &["plan", "frobnicate"],
        // Trace-layer errors: unreadable input, unknown flag.
        &["trace", "info", "no-such.trace"],
        &["trace", "record", "out.trace", "--bogus"],
        // Fuzz misuse: a vacuous sweep is rejected up front.
        &["fuzz", "--seeds", "0"],
        // Daemon client without a daemon.
        &["stats", "--socket", "no-such.sock"],
        &["submit", "no-such-spec.json", "--socket", "no-such.sock"],
        &["shutdown", "--socket", "no-such.sock"],
        &["serve"], // --socket is required
    ];
    for args in cases {
        let (code, _, stderr) = run_in(&dir, args);
        assert_eq!(code, 2, "{args:?} must exit 2; stderr:\n{stderr}");
        assert!(!stderr.trim().is_empty(), "{args:?} must explain itself");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_diff_separates_check_failure_from_bad_request() {
    let dir = scratch("trace-diff");
    // Two identical recordings: the recorder is deterministic, so diff
    // passes (exit 0); a recording of a different benchmark diverges
    // (exit 1, the check-failed code, distinct from the bad-request 2).
    let (code, _, stderr) = run_in(
        &dir,
        &["trace", "record", "a.trace", "--tiny", "--bench", "FFT"],
    );
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = run_in(
        &dir,
        &["trace", "record", "b.trace", "--tiny", "--bench", "FFT"],
    );
    assert_eq!(code, 0, "{stderr}");
    let (code, _, stderr) = run_in(
        &dir,
        &["trace", "record", "c.trace", "--tiny", "--bench", "LU"],
    );
    assert_eq!(code, 0, "{stderr}");

    let (code, stdout, _) = run_in(&dir, &["trace", "diff", "a.trace", "b.trace"]);
    assert_eq!(code, 0, "identical traces: {stdout}");
    let (code, stdout, _) = run_in(&dir, &["trace", "diff", "a.trace", "c.trace"]);
    assert_eq!(code, 1, "diverging traces are a failed check: {stdout}");
    let (code, _, _) = run_in(&dir, &["trace", "diff", "a.trace", "missing.trace"]);
    assert_eq!(
        code, 2,
        "an unreadable operand is a bad request, not a diff"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
