//! End-to-end tests of the experiments daemon: an in-process `serve` thread
//! plus real Unix-socket clients.
//!
//! The load-bearing property is **byte-identity**: a plan submitted over
//! the socket must return exactly the bytes `experiments plan run --json`
//! (i.e. `tw_bench::plan_figures_json`) writes for the same spec. The rest
//! is service semantics: warm hits, coalesced concurrent submits, metrics,
//! error responses, clean shutdown.

use denovo_waste::{ExperimentSpec, ScaleProfile, Session, WorkloadSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use tw_bench::daemon::{client::Client, serve, Config};
use tw_types::ProtocolKind;
use tw_workloads::BenchmarkKind;

struct Daemon {
    config: Config,
    thread: Option<std::thread::JoinHandle<Result<(), String>>>,
}

impl Daemon {
    /// Serves in a background thread and waits until the socket answers.
    fn start(name: &str, cache: bool) -> Daemon {
        Self::start_with(name, cache, false)
    }

    /// Like [`Daemon::start`], optionally arming the flight recorder. The
    /// trace file lands *outside* the scratch directory so it survives
    /// [`Daemon::stop`] for inspection.
    fn start_with(name: &str, cache: bool, record: bool) -> Daemon {
        let scratch = std::env::temp_dir().join(format!("tw-daemon-{name}"));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();
        let mut config = Config::new(scratch.join("exp.sock"));
        config.cache_dir = cache.then(|| scratch.join("cache"));
        config.workers = 2;
        config.queue_cap = 8;
        config.record =
            record.then(|| std::env::temp_dir().join(format!("tw-daemon-{name}-flight.jsonl")));
        let thread = std::thread::spawn({
            let config = config.clone();
            move || serve(&config)
        });
        let daemon = Daemon {
            config,
            thread: Some(thread),
        };
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            if let Ok(mut c) = Client::connect(&daemon.config.socket) {
                if c.ping().is_ok() {
                    return daemon;
                }
            }
            assert!(Instant::now() < deadline, "daemon did not come up");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn connect(&self) -> Client {
        Client::connect(&self.config.socket).unwrap()
    }

    /// Sends `shutdown`, joins the serve thread, and asserts the socket
    /// file is gone.
    fn stop(mut self) {
        self.connect().shutdown().unwrap();
        self.thread.take().unwrap().join().unwrap().unwrap();
        assert!(
            !self.config.socket.exists(),
            "clean shutdown must remove the socket file"
        );
        let _ = std::fs::remove_dir_all(self.config.socket.parent().unwrap());
    }
}

/// 2 protocols x 2 tiny benches = 4 cells; about a second cold.
fn small_spec() -> ExperimentSpec {
    ExperimentSpec::subset(
        vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
        vec![BenchmarkKind::Fft, BenchmarkKind::Radix],
        ScaleProfile::Tiny,
    )
}

#[test]
fn submit_is_byte_identical_to_a_direct_run_and_warm_hits() {
    let daemon = Daemon::start("byte-identity", true);
    let spec = small_spec();
    let spec_text = spec.to_json();

    let mut client = daemon.connect();
    assert!(client.ping().unwrap().contains("engine"));

    // Cold: everything simulates.
    let cold = client.submit(&spec_text).unwrap();
    assert_eq!(cold.cells, 4);
    assert_eq!((cold.hits, cold.misses, cold.coalesced), (0, 4, 0));

    // The response body is byte-for-byte the CLI's figures document.
    let direct = Session::new().run(&spec, &WorkloadSet::new()).unwrap();
    let direct_json = tw_bench::plan_figures_json(&direct).unwrap();
    assert_eq!(
        cold.figures,
        direct_json.as_bytes(),
        "daemon figures must be byte-identical to plan_figures_json"
    );

    // Warm: served entirely from the shared cache, same bytes.
    let warm = client.submit(&spec_text).unwrap();
    assert_eq!((warm.hits, warm.misses, warm.coalesced), (4, 0, 0));
    assert_eq!(warm.figures, cold.figures);

    // Metrics agree with what just happened.
    let stats = client.stats().unwrap();
    let get = |k: &str| stats.get(k).unwrap().as_u64().unwrap();
    assert_eq!(get("requests"), 2);
    assert_eq!(get("completed"), 2);
    assert_eq!(get("failed"), 0);
    assert_eq!(get("cells"), 8);
    assert_eq!(get("hits"), 4);
    assert_eq!(get("misses"), 4);
    assert_eq!(stats.get("hit_rate").unwrap().as_str().unwrap(), "0.5000");

    daemon.stop();
}

/// Reads one un-labeled sample (`name value`) out of a Prometheus text
/// exposition.
fn scrape(text: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("`{name}` not in exposition:\n{text}"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn stats_exposes_latency_percentiles_in_order() {
    let daemon = Daemon::start("percentiles", true);
    let spec_text = small_spec().to_json();
    let mut client = daemon.connect();
    client.submit(&spec_text).unwrap();
    client.submit(&spec_text).unwrap();

    let stats = client.stats().unwrap();
    let get = |k: &str| {
        stats
            .get(k)
            .unwrap_or_else(|| panic!("stats lacks `{k}`"))
            .as_u64()
            .unwrap()
    };
    // The histogram percentiles resolve to log2 bucket upper bounds clamped
    // to the observed maximum (exact pins live in the metrics unit tests);
    // end-to-end they must exist, be ordered, and bound the average.
    let (p50, p95, p99) = (
        get("latency_p50_us"),
        get("latency_p95_us"),
        get("latency_p99_us"),
    );
    assert!(p50 > 0, "two real submits took nonzero time");
    assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone");
    assert!(p99 <= get("latency_max_us"), "p99 is clamped to the max");
    assert!(get("latency_avg_us") <= get("latency_max_us"));
    let (q50, q95, q99) = (
        get("queue_wait_p50_us"),
        get("queue_wait_p95_us"),
        get("queue_wait_p99_us"),
    );
    assert!(q50 <= q95 && q95 <= q99);

    daemon.stop();
}

#[test]
fn metrics_exposition_is_well_formed_and_monotone() {
    let daemon = Daemon::start("metrics-op", true);
    let spec_text = small_spec().to_json();
    let mut client = daemon.connect();
    client.submit(&spec_text).unwrap();
    let m1 = client.metrics().unwrap();
    client.submit(&spec_text).unwrap();
    let m2 = client.metrics().unwrap();

    for needle in [
        "# TYPE tw_daemon_requests_total counter",
        "# TYPE tw_daemon_latency_us histogram",
        "tw_daemon_latency_us_bucket{le=\"+Inf\"}",
        "tw_daemon_queue_wait_us_bucket{le=\"+Inf\"}",
        "tw_daemon_workers 2",
    ] {
        assert!(m2.contains(needle), "missing `{needle}` in:\n{m2}");
    }
    // Counters are monotone across the two scrapes.
    assert_eq!(scrape(&m1, "tw_daemon_requests_total"), 1);
    assert_eq!(scrape(&m2, "tw_daemon_requests_total"), 2);
    assert_eq!(scrape(&m2, "tw_daemon_completed_total"), 2);
    assert!(
        scrape(&m2, "tw_daemon_cells_total") > scrape(&m1, "tw_daemon_cells_total"),
        "the second submit added cells"
    );
    assert_eq!(scrape(&m2, "tw_daemon_latency_us_count"), 2);

    daemon.stop();
}

#[test]
fn recording_daemon_writes_a_valid_trace_with_request_and_cell_spans() {
    let daemon = Daemon::start_with("recording", true, true);
    let trace_path = daemon.config.record.clone().unwrap();
    let spec_text = small_spec().to_json();
    let mut client = daemon.connect();
    let cold = client.submit(&spec_text).unwrap();
    assert_eq!(cold.misses, 4);
    let warm = client.submit(&spec_text).unwrap();
    assert_eq!(warm.hits, 4);
    // Recording must not perturb the served bytes.
    assert_eq!(cold.figures, warm.figures);
    daemon.stop();

    // The trace is written on clean shutdown, validates structurally, and
    // carries per-request spans plus the session's per-cell spans.
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let summary = tw_obs::validate_trace(&text).unwrap();
    assert!(summary.spans >= 10, "2 requests + 8 cells at minimum");
    assert!(text.contains("\"name\":\"request\""));
    assert!(text.contains("\"outcome\":\"ok\""));
    assert!(text.contains("\"name\":\"cell\""));
    assert!(text.contains("\"outcome\":\"disk_hit\""));
    assert!(text.contains("\"timing\":{"));
    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn concurrent_submits_of_one_plan_simulate_each_cell_once() {
    // No cache dir: only the shared single-flight table dedups, which is
    // exactly what two simultaneous clients exercise.
    let daemon = Daemon::start("concurrent", false);
    let spec_text = small_spec().to_json();

    let replies: Vec<_> = {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let socket = daemon.config.socket.clone();
                let spec_text = spec_text.clone();
                std::thread::spawn(move || {
                    Client::connect(&socket)
                        .unwrap()
                        .submit(&spec_text)
                        .unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    };

    let total_misses: u64 = replies.iter().map(|r| r.misses).sum();
    let total: u64 = replies.iter().map(|r| r.cells).sum();
    assert_eq!(total, 8);
    assert_eq!(
        total_misses, 4,
        "each distinct cell must be simulated exactly once across both requests"
    );
    assert_eq!(
        replies[0].figures, replies[1].figures,
        "same plan, same bytes"
    );

    daemon.stop();
}

#[test]
fn bad_requests_get_error_responses_not_a_dead_daemon() {
    let daemon = Daemon::start("errors", false);
    let mut client = daemon.connect();

    let err = client.submit("{ not a spec").unwrap_err();
    assert!(err.contains("bad spec"), "{err}");

    // An unknown op over the raw wire is answered, not ignored.
    use denovo_waste::Json;
    use std::io::BufReader;
    use tw_bench::daemon::wire;
    let stream = std::os::unix::net::UnixStream::connect(&daemon.config.socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    wire::write_frame(
        &mut writer,
        Json::Obj(vec![("op".to_string(), Json::str("bogus"))]),
        None,
    )
    .unwrap();
    let (reply, _) = wire::read_frame(&mut reader).unwrap().unwrap();
    assert_eq!(reply.get("status").unwrap().as_str(), Ok("error"));
    assert!(
        reply
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("bogus"),
        "the unknown op is named"
    );

    // The connection that produced errors still works...
    let fields = client.stats().unwrap();
    assert_eq!(fields.get("failed").unwrap().as_u64(), Ok(1));
    // ...and so does the daemon as a whole.
    assert!(client.submit(&small_spec().to_json()).is_ok());

    daemon.stop();
}

#[test]
fn serve_refuses_a_live_socket_and_replaces_a_stale_one() {
    let daemon = Daemon::start("stale-socket", false);
    // A second daemon on the same (answering) socket must refuse.
    let err = serve(&daemon.config).unwrap_err();
    assert!(err.contains("already served"), "{err}");
    daemon.stop();

    // A stale socket *file* (nothing listening) is replaced, not fatal.
    let scratch = std::env::temp_dir().join("tw-daemon-stale-file");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).unwrap();
    let socket: PathBuf = scratch.join("exp.sock");
    drop(std::os::unix::net::UnixListener::bind(&socket).unwrap());
    assert!(socket.exists(), "a dead listener leaves its socket file");
    let mut config = Config::new(socket);
    config.workers = 1;
    let thread = std::thread::spawn({
        let config = config.clone();
        move || serve(&config)
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut client = loop {
        if let Ok(c) = Client::connect(&config.socket) {
            break c;
        }
        assert!(
            Instant::now() < deadline,
            "daemon did not replace the stale socket"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    client.shutdown().unwrap();
    thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&scratch);
}
