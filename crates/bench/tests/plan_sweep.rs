//! Sweeps the old matrix API could not express.
//!
//! The original `ExperimentMatrix` keyed cells by `BenchmarkKind`, welded
//! the system to the three `ScaleProfile`s, and panicked on duplicate kinds
//! — so one matrix could hold at most one synthesized workload and exactly
//! one system geometry. These tests exercise the plan API on exactly those
//! shapes: two synthesized workloads in one plan, an L2-slice-size sweep,
//! and a core-count (mesh) sweep; plus the NaN regression for zero-traffic
//! baseline cells.

use denovo_waste::{
    ExperimentError, ExperimentMatrix, ExperimentSpec, RowKey, ScaleProfile, Session,
    SystemVariant, WorkloadSet, WorkloadSpec,
};
use tw_scenarios::synthesize;
use tw_types::{Addr, ProtocolKind, RegionId, RegionInfo, RegionTable, TraceOp};
use tw_workloads::{BenchmarkKind, Workload};

#[test]
fn one_plan_mixes_two_synthesized_workloads_across_an_l2_sweep() {
    // Two distinct synthesized workloads — both BenchmarkKind::Synthesized,
    // which the old run_on aborted on — swept over two L2 slice sizes under
    // two protocols: 2 x 2 x 2 = 8 cells in one plan.
    let mut spec = ExperimentSpec::subset(
        vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
        vec![],
        ScaleProfile::Tiny,
    );
    spec.name = "synth-l2-sweep".into();
    spec.workloads = vec![
        WorkloadSpec::provided("synth-a"),
        WorkloadSpec::provided("synth-b"),
    ];
    spec.variants = vec![
        SystemVariant::l2_slice("l2-16k", 16 * 1024),
        SystemVariant::l2_slice("l2-64k", 64 * 1024),
    ];
    let mut set = WorkloadSet::new();
    set.insert("synth-a", synthesize(1));
    set.insert("synth-b", synthesize(2));

    let out = Session::new().run(&spec, &set).unwrap();
    assert_eq!(out.rows.len(), 4);
    assert_eq!(out.cells(), 8);

    // Every (workload, variant) row normalizes to its own MESI cell.
    let fig = out.fig_5_1a().unwrap();
    for row in [
        "synth-a@l2-16k",
        "synth-a@l2-64k",
        "synth-b@l2-16k",
        "synth-b@l2-64k",
    ] {
        let mesi = fig.value(&format!("{row}/MESI"), "Total").unwrap();
        assert!((mesi - 1.0).abs() < 1e-9, "{row}: MESI bar must be 1.0");
        let opt = fig.value(&format!("{row}/DBypFull"), "Total").unwrap();
        assert!(opt.is_finite() && opt > 0.0, "{row}: DBypFull bar {opt}");
    }

    // The two workloads are genuinely different rows, not aliases.
    let a = out
        .report(
            &RowKey {
                workload: "synth-a".into(),
                variant: "l2-16k".into(),
            },
            ProtocolKind::Mesi,
        )
        .unwrap();
    let b = out
        .report(
            &RowKey {
                workload: "synth-b".into(),
                variant: "l2-16k".into(),
            },
            ProtocolKind::Mesi,
        )
        .unwrap();
    assert_ne!(
        a.total_flit_hops(),
        b.total_flit_hops(),
        "distinct seeds should produce distinct traffic"
    );
}

#[test]
fn l2_slice_size_sweep_changes_the_numbers() {
    // Sweeping a cache geometry parameter — inexpressible in the old API,
    // where the system was welded to the ScaleProfile — must actually reach
    // the simulated hierarchy: FFT's working set overflows a 8 KB slice but
    // not a 256 KB one, so MESI traffic differs between the variants.
    let mut spec = ExperimentSpec::subset(
        vec![ProtocolKind::Mesi],
        vec![BenchmarkKind::Fft],
        ScaleProfile::Tiny,
    );
    spec.name = "fft-l2-sweep".into();
    spec.variants = vec![
        SystemVariant::l2_slice("l2-8k", 8 * 1024),
        SystemVariant::l2_slice("l2-256k", 256 * 1024),
    ];
    let out = Session::new().run(&spec, &WorkloadSet::new()).unwrap();
    let small = out
        .report(
            &RowKey {
                workload: "FFT".into(),
                variant: "l2-8k".into(),
            },
            ProtocolKind::Mesi,
        )
        .unwrap();
    let big = out
        .report(
            &RowKey {
                workload: "FFT".into(),
                variant: "l2-256k".into(),
            },
            ProtocolKind::Mesi,
        )
        .unwrap();
    assert!(
        small.dram_accesses > big.dram_accesses,
        "a smaller L2 must go to DRAM more often ({} vs {})",
        small.dram_accesses,
        big.dram_accesses
    );
    assert_ne!(small.total_flit_hops(), big.total_flit_hops());
}

#[test]
fn core_count_sweep_rebuilds_generated_workloads_per_mesh() {
    // A mesh sweep changes the core count, so generator-backed workloads are
    // rebuilt per variant — each variant's cells carry a different content
    // digest (it is a different trace), and both simulate to completion.
    let mut spec = ExperimentSpec::subset(
        vec![ProtocolKind::Mesi],
        vec![BenchmarkKind::Fft],
        ScaleProfile::Tiny,
    );
    spec.name = "fft-mesh-sweep".into();
    spec.variants = vec![SystemVariant::base(), SystemVariant::mesh("mesh-2x2", 2, 2)];

    let plan = spec.compile(&WorkloadSet::new()).unwrap();
    assert_eq!(plan.cells.len(), 2);
    assert_eq!(plan.cells[0].system.tiles(), 16);
    assert_eq!(plan.cells[1].system.tiles(), 4);
    assert_ne!(
        plan.cells[0].workload_ref.digest, plan.cells[1].workload_ref.digest,
        "a 4-core FFT trace is not the 16-core FFT trace"
    );

    let out = Session::new().execute(&plan).unwrap();
    for (row, _) in &out.rows {
        let r = out.report(row, ProtocolKind::Mesi).unwrap();
        assert!(r.total_cycles > 0, "{}: empty run", row.variant);
        assert!(r.total_flit_hops() > 0.0);
    }
}

#[test]
fn provided_workloads_reject_core_count_mismatch() {
    // Fixed-core workloads (traces, synthesized streams) cannot follow a
    // mesh sweep; the mismatch is a structured error, not a panic deep in
    // the simulator.
    let mut spec = ExperimentSpec::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
    spec.workloads = vec![WorkloadSpec::provided("synth")];
    spec.variants = vec![SystemVariant::mesh("mesh-2x2", 2, 2)];
    let mut set = WorkloadSet::new();
    set.insert("synth", synthesize(7)); // 16 cores
    let err = spec.compile(&set).unwrap_err();
    assert!(
        matches!(err, ExperimentError::CoreCountMismatch { .. }),
        "{err}"
    );
}

/// A 16-core workload that performs no memory accesses at all: compute
/// bursts and barriers only, so every traffic total is exactly zero.
fn zero_traffic_workload() -> Workload {
    let mut regions = RegionTable::new();
    regions.insert(RegionInfo::plain(RegionId(1), "unused", Addr::new(0), 4096));
    Workload {
        kind: BenchmarkKind::Custom,
        input: "compute-only".into(),
        regions,
        traces: (0..16)
            .map(|core| {
                vec![
                    TraceOp::compute(10 + core as u32),
                    TraceOp::barrier(0),
                    TraceOp::compute(5),
                ]
            })
            .collect(),
    }
}

#[test]
fn zero_traffic_baseline_yields_zero_rows_not_nan() {
    // Regression: fig_5_1a divided by the baseline's total traffic without
    // a zero guard, so a zero-traffic baseline cell produced NaN rows (and
    // `null`s in the JSON artifact). The contract is all-zero rows.
    let wl = zero_traffic_workload();
    wl.assert_well_formed();
    let out = ExperimentMatrix::subset(
        vec![ProtocolKind::Mesi, ProtocolKind::DeNovo],
        vec![],
        ScaleProfile::Tiny,
    )
    .run_on(vec![wl])
    .unwrap();

    let report = out
        .report(BenchmarkKind::Custom, ProtocolKind::Mesi)
        .unwrap();
    assert_eq!(report.total_flit_hops(), 0.0, "the premise: zero traffic");
    assert!(report.total_cycles > 0);

    let fig_a = out.fig_5_1a().unwrap();
    for (label, values) in fig_a.rows() {
        for v in values {
            assert!(v.is_finite(), "{label}: non-finite value {v}");
            assert_eq!(*v, 0.0, "{label}: zero baseline must yield 0.0 rows");
        }
    }
    // Figure 5.2 normalizes by time (non-zero here) but must stay finite on
    // every figure of the set; sweep them all.
    for fig in out.all_figures(ScaleProfile::Tiny).unwrap() {
        for (label, values) in fig.rows() {
            for v in values {
                assert!(
                    v.is_finite(),
                    "{}: {label}: non-finite value {v}",
                    fig.title()
                );
            }
        }
    }
}
