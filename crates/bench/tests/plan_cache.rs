//! Properties of the content-addressed result cache.
//!
//! The cache's contract: a warm re-run returns **bit-identical** reports
//! (reusing `SimReport`'s exact `PartialEq` from the determinism work) at a
//! fraction of the cold cost, and *any* change to a key component — a trace
//! byte, the protocol, a geometry field, the engine version — misses instead
//! of serving a stale result. Plus the spec-codec property: every
//! representable spec round-trips through its JSON form.

use denovo_waste::{
    cache_key, ExperimentSpec, ScaleProfile, Session, SystemVariant, WorkloadSet, WorkloadSpec,
    ENGINE_VERSION,
};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Instant;
use tw_scenarios::synthesize;
use tw_types::{Digest, NetworkModelKind, ProtocolKind, SystemConfig, TraceOp};

/// A fresh per-test cache directory under the system temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-plan-cache-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_rerun_of_the_full_tiny_matrix_is_bit_identical_and_10x_faster() {
    let dir = fresh_dir("warm-rerun");
    let spec = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
    let session = Session::new().with_cache_dir(&dir);
    let none = WorkloadSet::new();

    let cold_started = Instant::now();
    let cold = session.run(&spec, &none).unwrap();
    let cold_elapsed = cold_started.elapsed();
    assert_eq!(cold.cache.hits, 0);
    assert_eq!(cold.cache.misses, 54);

    let warm_started = Instant::now();
    let warm = session.run(&spec, &none).unwrap();
    let mut warm_elapsed = warm_started.elapsed();
    assert_eq!(warm.cache.hits, 54, "warm re-run must be 100% cache hits");
    assert_eq!(warm.cache.misses, 0);
    assert!((warm.cache.hit_rate() - 1.0).abs() < 1e-12);

    // Bit-identical reports (SimReport's PartialEq is exact, including every
    // f64), and therefore byte-identical figure output.
    assert_eq!(
        warm.reports, cold.reports,
        "cached reports must be bit-identical"
    );
    assert_eq!(
        tw_bench::plan_figures_json(&warm).unwrap(),
        tw_bench::plan_figures_json(&cold).unwrap(),
        "figure JSON must be byte-identical across cold/warm runs"
    );

    // The acceptance bar is >= 10x; in practice the warm run only rebuilds
    // and digests workloads plus parses 54 small files (~60x measured).
    // Wall-clock on a loaded runner is noisy, so a warm measurement that
    // misses the bar gets one re-measurement and the best attempt counts —
    // a genuine cache regression fails both.
    if cold_elapsed < warm_elapsed * 10 {
        let retry_started = Instant::now();
        let retry = session.run(&spec, &none).unwrap();
        assert_eq!(retry.cache.hits, 54);
        warm_elapsed = warm_elapsed.min(retry_started.elapsed());
    }
    assert!(
        cold_elapsed >= warm_elapsed * 10,
        "warm re-run must be at least 10x faster (cold {cold_elapsed:?}, warm {warm_elapsed:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// One-workload, one-protocol spec over a provided synthesized workload.
fn synth_spec(protocol: ProtocolKind) -> ExperimentSpec {
    let mut spec = ExperimentSpec::subset(vec![protocol], vec![], ScaleProfile::Tiny);
    spec.name = "cache-mutation".into();
    spec.workloads = vec![WorkloadSpec::provided("synth")];
    spec
}

#[test]
fn mutating_any_key_component_misses() {
    let dir = fresh_dir("key-mutation");
    let session = Session::new().with_cache_dir(&dir);
    let wl = synthesize(3);
    let mut set = WorkloadSet::new();
    set.insert("synth", wl.clone());

    // Prime the cache and prove the baseline hits.
    let spec = synth_spec(ProtocolKind::Mesi);
    assert_eq!(session.run(&spec, &set).unwrap().cache.misses, 1);
    assert_eq!(session.run(&spec, &set).unwrap().cache.hits, 1);

    // (1) One trace byte: lengthen a compute burst by a cycle. The workload
    // is still well-formed, but its content digest — and so the key — moves.
    let mut mutated = wl.clone();
    let op = mutated.traces[0]
        .iter_mut()
        .find(|op| matches!(op, TraceOp::Compute { .. }))
        .expect("synthesized workloads contain compute bursts");
    if let TraceOp::Compute { cycles } = op {
        *cycles += 1;
    }
    let mut mutated_set = WorkloadSet::new();
    mutated_set.insert("synth", mutated);
    let out = session.run(&spec, &mutated_set).unwrap();
    assert_eq!(
        (out.cache.hits, out.cache.misses),
        (0, 1),
        "a single trace byte must miss"
    );

    // (2) The protocol.
    let out = session
        .run(&synth_spec(ProtocolKind::DeNovo), &set)
        .unwrap();
    assert_eq!(
        (out.cache.hits, out.cache.misses),
        (0, 1),
        "a different protocol must miss"
    );

    // (3) A geometry field (l2_slice_bytes).
    let mut l2 = synth_spec(ProtocolKind::Mesi);
    l2.variants = vec![SystemVariant::l2_slice("l2-64k", 64 * 1024)];
    let out = session.run(&l2, &set).unwrap();
    assert_eq!(
        (out.cache.hits, out.cache.misses),
        (0, 1),
        "a different L2 slice size must miss"
    );

    // (4) The engine version (the key function is pure, so this is provable
    // without monkey-patching the const).
    let sys = SystemConfig::default();
    let digest = Digest::of_bytes(b"same-trace");
    assert_ne!(
        cache_key(digest, &sys, ProtocolKind::Mesi, 100, ENGINE_VERSION),
        cache_key(
            digest,
            &sys,
            ProtocolKind::Mesi,
            100,
            "denovo-waste/engine-v999"
        ),
        "an engine-version bump must retire every entry"
    );

    // Nothing above disturbed the original entries: the primed cell still hits.
    assert_eq!(session.run(&spec, &set).unwrap().cache.hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn network_model_is_a_cache_key_component() {
    let dir = fresh_dir("network-key");
    let session = Session::new().with_cache_dir(&dir);
    let mut set = WorkloadSet::new();
    set.insert("synth", synthesize(3));

    // Prime the cache under the (default) analytic model.
    let spec = synth_spec(ProtocolKind::Mesi);
    assert_eq!(session.run(&spec, &set).unwrap().cache.misses, 1);
    assert_eq!(session.run(&spec, &set).unwrap().cache.hits, 1);

    // Flipping NetworkModelKind on the otherwise-identical cell must miss:
    // the models report different execution times, so a cross-model hit
    // would serve wrong numbers.
    let mut flit = synth_spec(ProtocolKind::Mesi);
    flit.networks = vec![NetworkModelKind::FlitLevel];
    let out = session.run(&flit, &set).unwrap();
    assert_eq!(
        (out.cache.hits, out.cache.misses),
        (0, 1),
        "a different network model must miss"
    );

    // ... and both entries now coexist: each model re-runs warm.
    assert_eq!(session.run(&spec, &set).unwrap().cache.hits, 1);
    assert_eq!(session.run(&flit, &set).unwrap().cache.hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_flit_level_rerun_is_bit_identical_and_10x_faster() {
    // The flit-level model gets the same cache bar as the analytic one: a
    // warm full-Tiny-matrix re-run must be 100% hits, bit-identical, and
    // at least 10x faster than the cold simulation.
    let dir = fresh_dir("warm-flit");
    let mut spec = ExperimentSpec::full_matrix(ScaleProfile::Tiny);
    spec.networks = vec![NetworkModelKind::FlitLevel];
    let session = Session::new().with_cache_dir(&dir);
    let none = WorkloadSet::new();

    let cold_started = Instant::now();
    let cold = session.run(&spec, &none).unwrap();
    let cold_elapsed = cold_started.elapsed();
    assert_eq!((cold.cache.hits, cold.cache.misses), (0, 54));

    let warm_started = Instant::now();
    let warm = session.run(&spec, &none).unwrap();
    let mut warm_elapsed = warm_started.elapsed();
    assert_eq!((warm.cache.hits, warm.cache.misses), (54, 0));
    assert_eq!(
        warm.reports, cold.reports,
        "cached flit-level reports must be bit-identical"
    );

    // Same wall-clock-noise policy as the analytic bar: one re-measurement,
    // best attempt counts.
    if cold_elapsed < warm_elapsed * 10 {
        let retry_started = Instant::now();
        let retry = session.run(&spec, &none).unwrap();
        assert_eq!(retry.cache.hits, 54);
        warm_elapsed = warm_elapsed.min(retry_started.elapsed());
    }
    assert!(
        cold_elapsed >= warm_elapsed * 10,
        "warm flit-level re-run must be at least 10x faster (cold {cold_elapsed:?}, warm {warm_elapsed:?})"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_are_recomputed_not_trusted() {
    let dir = fresh_dir("corrupt");
    let session = Session::new().with_cache_dir(&dir);
    let mut set = WorkloadSet::new();
    set.insert("synth", synthesize(5));
    let spec = synth_spec(ProtocolKind::DBypFull);

    let cold = session.run(&spec, &set).unwrap();
    assert_eq!(cold.cache.misses, 1);

    // Garble every entry in the cache directory.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"{ not a cache entry").unwrap();
    }

    let warm = session.run(&spec, &set).unwrap();
    assert_eq!(
        (warm.cache.hits, warm.cache.misses),
        (0, 1),
        "a corrupt entry must be a miss, not a parse failure or a stale hit"
    );
    assert_eq!(warm.reports, cold.reports);

    // The recompute overwrote the corrupt entry, so the next run hits again.
    assert_eq!(session.run(&spec, &set).unwrap().cache.hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The registry extension names round-trip explicitly: a spec pinning the
/// Dragon protocol and the snooping-bus network must survive the JSON codec
/// with both names spelled out in the document (older specs omit the
/// `protocols` key entirely and decode to the paper's figure set).
#[test]
fn dragon_and_bus_specs_round_trip_through_plan_json() {
    let mut spec = ExperimentSpec::subset(
        vec![ProtocolKind::Mesi, ProtocolKind::Dragon],
        vec![tw_workloads::BenchmarkKind::Fft],
        ScaleProfile::Tiny,
    );
    spec.networks = vec![NetworkModelKind::Analytic, NetworkModelKind::SnoopBus];
    let text = spec.to_json();
    assert!(text.contains("Dragon"), "protocol name missing:\n{text}");
    assert!(text.contains("bus"), "network name missing:\n{text}");
    let back = ExperimentSpec::from_json(&text).unwrap();
    assert_eq!(back, spec);

    // Decode-side acceptance is case-insensitive like every by_name.
    let lowered = text.replace("Dragon", "dragon");
    assert_eq!(ExperimentSpec::from_json(&lowered).unwrap(), spec);
}

/// Builds a representable spec from proptest-drawn raw parts.
fn spec_from_raw(
    scale_i: usize,
    proto_mask: u16,
    workload_raw: &[(u8, u8)],
    variant_raw: &[(u8, u8)],
    network_mask: u8,
    baseline_i: usize,
) -> ExperimentSpec {
    let scale = [
        ScaleProfile::Paper,
        ScaleProfile::Scaled,
        ScaleProfile::Tiny,
    ][scale_i % 3];
    let protocols: Vec<ProtocolKind> = ProtocolKind::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| proto_mask & (1 << i) != 0)
        .map(|(_, p)| p)
        .collect();
    let workloads = workload_raw
        .iter()
        .enumerate()
        .map(|(i, (kind, which))| {
            let name = format!("w{i}");
            match kind % 3 {
                0 => WorkloadSpec {
                    name,
                    source: denovo_waste::WorkloadSource::Bench(
                        tw_workloads::BenchmarkKind::ALL[*which as usize % 6],
                    ),
                },
                1 => WorkloadSpec::trace(name, format!("traces/t{which}.trace")),
                _ => WorkloadSpec {
                    name,
                    source: denovo_waste::WorkloadSource::Provided(format!("p{which}")),
                },
            }
        })
        .collect();
    let variants = variant_raw
        .iter()
        .enumerate()
        .map(|(i, (kind, k))| {
            let label = format!("v{i}");
            let k = u64::from(*k % 6);
            match kind % 5 {
                0 => SystemVariant::l2_slice(label, 1024 << k),
                1 => SystemVariant::mesh(label, 2 + k as usize, 2 + (k as usize / 2)),
                2 => SystemVariant {
                    l1_bytes: Some(4096 << k),
                    ..SystemVariant::base()
                },
                3 => SystemVariant::network(
                    label,
                    NetworkModelKind::ALL[k as usize % NetworkModelKind::ALL.len()],
                ),
                _ => SystemVariant {
                    line_bytes: Some(16 << (k % 3)),
                    ..SystemVariant::base()
                },
            }
        })
        .enumerate()
        .map(|(i, mut v)| {
            v.label = format!("v{i}");
            v
        })
        .collect();
    let networks = match network_mask % 5 {
        0 => Vec::new(),
        1 => vec![NetworkModelKind::Analytic],
        2 => vec![NetworkModelKind::FlitLevel],
        3 => vec![NetworkModelKind::SnoopBus],
        _ => NetworkModelKind::ALL.to_vec(),
    };
    let baseline = denovo_waste::Baseline::Protocol(protocols[baseline_i % protocols.len().max(1)]);
    ExperimentSpec {
        name: "prop-spec".into(),
        scale,
        protocols,
        workloads,
        variants,
        networks,
        baseline,
    }
}

proptest! {
    /// Any representable spec round-trips exactly through its JSON document.
    #[test]
    fn spec_json_round_trips(
        scale_i in 0usize..3,
        proto_mask in 1u16..1024,
        workload_raw in prop::collection::vec((0u8..3, 0u8..8), 1..6),
        variant_raw in prop::collection::vec((0u8..5, 0u8..8), 0..5),
        network_mask in 0u8..5,
        baseline_i in 0usize..10,
    ) {
        let spec = spec_from_raw(
            scale_i, proto_mask, &workload_raw, &variant_raw, network_mask, baseline_i,
        );
        let text = spec.to_json();
        let back = ExperimentSpec::from_json(&text).unwrap();
        prop_assert_eq!(back, spec);
    }
}
