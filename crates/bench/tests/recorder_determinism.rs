//! Observer-lane contract tests for the flight recorder.
//!
//! Two properties carry the telemetry design: (1) recording never changes a
//! result byte, and (2) two identical runs emit byte-identical traces once
//! the quarantined `timing` sub-objects are stripped. The rejection tests
//! mirror the DNVT trace contract: a cut or damaged trace fails loudly with
//! a named error, never silently succeeds.

use denovo_waste::{ExperimentSpec, ScaleProfile, Session, WorkloadSet};
use proptest::prelude::*;
use std::sync::Arc;
use tw_obs::{diff_traces, stripped_lines, validate_trace, FlightRecorder, SpanSink, TraceError};
use tw_types::ProtocolKind;
use tw_workloads::BenchmarkKind;

const PROTOCOLS: [ProtocolKind; 3] = [
    ProtocolKind::Mesi,
    ProtocolKind::DeNovo,
    ProtocolKind::DBypFull,
];
const BENCHES: [BenchmarkKind; 2] = [BenchmarkKind::Fft, BenchmarkKind::Radix];

/// A tiny spec over non-empty protocol/benchmark subsets. Every cell is
/// distinct and the session runs cache-less, so no single-flight
/// coalescing can make leader attribution racy.
fn spec_from(proto_mask: u8, bench_mask: u8) -> ExperimentSpec {
    let protocols = PROTOCOLS
        .iter()
        .enumerate()
        .filter(|(i, _)| proto_mask & (1 << i) != 0)
        .map(|(_, p)| *p)
        .collect();
    let benches = BENCHES
        .iter()
        .enumerate()
        .filter(|(i, _)| bench_mask & (1 << i) != 0)
        .map(|(_, b)| *b)
        .collect();
    ExperimentSpec::subset(protocols, benches, ScaleProfile::Tiny)
}

/// Runs `spec` with the recorder armed; returns the trace JSONL and a
/// deterministic rendering of the whole outcome (reports live in BTreeMaps,
/// so the Debug form is byte-stable).
fn recorded_run(spec: &ExperimentSpec) -> (String, String) {
    let rec = Arc::new(FlightRecorder::new());
    let session = Session::new().with_recorder(SpanSink::new(Arc::clone(&rec) as _, "test"));
    let outcome = session.run(spec, &WorkloadSet::new()).unwrap();
    (rec.to_jsonl(), format!("{outcome:?}"))
}

proptest! {
    // Each case runs up to six tiny cells three times; a handful of cases
    // keeps the suite fast while still sweeping the subset lattice.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn identical_runs_emit_identical_traces_modulo_timing(
        proto_mask in 1u8..(1 << PROTOCOLS.len()),
        bench_mask in 1u8..(1 << BENCHES.len()),
    ) {
        let spec = spec_from(proto_mask, bench_mask);
        let (trace_a, outcome_a) = recorded_run(&spec);
        let (trace_b, outcome_b) = recorded_run(&spec);
        prop_assert_eq!(&outcome_a, &outcome_b);
        prop_assert!(validate_trace(&trace_a).unwrap().spans > 0);
        prop_assert_eq!(diff_traces(&trace_a, &trace_b).unwrap(), None);
        prop_assert_eq!(
            stripped_lines(&trace_a).unwrap(),
            stripped_lines(&trace_b).unwrap()
        );

        // Observer lane: a run without the recorder produces the same outcome.
        let plain = Session::new().run(&spec, &WorkloadSet::new()).unwrap();
        prop_assert_eq!(format!("{plain:?}"), outcome_a);
    }
}

#[test]
fn corrupt_and_truncated_traces_are_rejected_with_named_errors() {
    let spec = spec_from(1, 1);
    let (trace, _) = recorded_run(&spec);
    let n = validate_trace(&trace).unwrap().spans;
    assert!(n >= 2, "at least the run span and the cell span");

    // Cut mid-stream: the header's span count is the truncation oracle.
    let kept = trace.lines().count() - 1;
    let truncated: String = trace.lines().take(kept).map(|l| format!("{l}\n")).collect();
    assert_eq!(
        validate_trace(&truncated),
        Err(TraceError::Truncated {
            expected: n,
            found: n - 1
        })
    );

    // Surplus lines after the promised count are damage, not extra data.
    let surplus = format!("{trace}{}\n", trace.lines().last().unwrap());
    assert!(matches!(
        validate_trace(&surplus),
        Err(TraceError::Corrupt(_))
    ));

    // A foreign schema tag is rejected by name.
    let bad_header = trace.replacen("denovo-waste/flight/v1", "denovo-waste/flight/v9", 1);
    assert!(matches!(
        validate_trace(&bad_header),
        Err(TraceError::Corrupt(_))
    ));
}
