//! Cache-lifecycle properties: single-flight deduplication, temp-file
//! hygiene on the store error path, startup sweeps, and the two-process
//! shared-cache race.
//!
//! These are the concurrency bugs the daemon made real: duplicate-key cells
//! simulating twice, `*.tmp-*` orphans accumulating under a long-lived
//! cache directory, and two writers racing on one entry.

use denovo_waste::{
    sweep_temp_files, ExperimentSpec, ScaleProfile, Session, WorkloadSet, WorkloadSpec,
};
use std::path::{Path, PathBuf};
use std::time::Duration;
use tw_scenarios::synthesize;
use tw_types::ProtocolKind;

/// A fresh per-test scratch directory under the system temp dir.
fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tw-cache-lifecycle-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A spec whose two provided workloads are the *same* synthesized content
/// under two names — two rows, one content digest, one cache key per
/// protocol.
fn duplicate_key_fixture() -> (ExperimentSpec, WorkloadSet) {
    let mut spec = ExperimentSpec::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
    spec.name = "dup-key".into();
    spec.workloads = vec![
        WorkloadSpec::provided("twin-a"),
        WorkloadSpec::provided("twin-b"),
    ];
    let wl = synthesize(7);
    let mut set = WorkloadSet::new();
    set.insert("twin-a", wl.clone());
    set.insert("twin-b", wl);
    (spec, set)
}

fn temp_files_in(dir: &Path) -> Vec<String> {
    match std::fs::read_dir(dir) {
        Err(_) => Vec::new(),
        Ok(entries) => entries
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains(".tmp-"))
            .collect(),
    }
}

#[test]
fn duplicate_key_cells_simulate_exactly_once() {
    let (spec, set) = duplicate_key_fixture();
    let plan = spec.compile(&set).unwrap();
    assert_eq!(plan.cells.len(), 2);
    let session = Session::new();
    assert_eq!(
        session.key_of(&plan.cells[0]),
        session.key_of(&plan.cells[1]),
        "fixture must produce one shared cache key"
    );

    // Cache-less session: the single-flight table is the only dedup layer.
    // Exactly one cell simulates; the other coalesces onto it.
    let out = session.execute(&plan).unwrap();
    assert_eq!(
        (out.cache.hits, out.cache.misses, out.cache.coalesced),
        (0, 1, 1),
        "one leader simulates, the duplicate coalesces"
    );
    let reports: Vec<_> = out.reports.values().collect();
    assert_eq!(
        reports[0], reports[1],
        "both rows share the leader's report"
    );
}

#[test]
fn duplicate_key_cells_through_a_cache_dir_store_once_and_hit_twice_warm() {
    let dir = fresh_dir("dup-key-cached");
    let (spec, set) = duplicate_key_fixture();
    let session = Session::new().with_cache_dir(&dir);

    let cold = session.run(&spec, &set).unwrap();
    // Exactly one simulation. Whether the duplicate coalesces onto the
    // in-flight leader or disk-hits the entry the leader already stored is
    // a scheduling race; both count as served-without-simulating.
    assert_eq!(cold.cache.misses, 1, "cold: exactly one simulation");
    assert_eq!(cold.cache.hits + cold.cache.coalesced, 1);
    // One key -> one entry file, no leftovers.
    let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().flatten().collect();
    assert_eq!(entries.len(), 1, "one shared key stores one entry");
    assert!(temp_files_in(&dir).is_empty());

    // Warm, from a *fresh* session (empty flight table): both cells are
    // disk hits.
    let warm = Session::new()
        .with_cache_dir(&dir)
        .run(&spec, &set)
        .unwrap();
    assert_eq!(
        (warm.cache.hits, warm.cache.misses, warm.cache.coalesced),
        (2, 0, 0)
    );
    assert_eq!(warm.reports, cold.reports, "bit-identical across the store");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_store_cleans_up_its_temp_file() {
    let dir = fresh_dir("store-failure");
    let mut spec = ExperimentSpec::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
    spec.workloads = vec![WorkloadSpec::provided("synth")];
    let mut set = WorkloadSet::new();
    set.insert("synth", synthesize(3));
    let plan = spec.compile(&set).unwrap();
    let session = Session::new().with_cache_dir(&dir);

    // Sabotage the commit: a *directory* squatting on the entry path makes
    // the temp-file write succeed and the rename fail.
    std::fs::create_dir_all(&dir).unwrap();
    let entry_path = dir.join(format!("{}.json", session.key_of(&plan.cells[0])));
    std::fs::create_dir(&entry_path).unwrap();

    let err = session.execute(&plan).unwrap_err().to_string();
    assert!(err.contains("cannot commit"), "{err}");
    assert_eq!(
        temp_files_in(&dir),
        Vec::<String>::new(),
        "the failed store must remove its temp file"
    );

    // Unblock the path: the same session recovers on the next execute (the
    // report is already in the flight table, so this is a coalesced store).
    std::fs::remove_dir(&entry_path).unwrap();
    session.execute(&plan).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sweep_removes_only_stale_temp_files() {
    let dir = fresh_dir("sweep");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("entry.json"), b"{}").unwrap();
    std::fs::write(dir.join("orphan.tmp-1234-aaaa"), b"partial").unwrap();
    std::fs::write(dir.join("orphan2.tmp-99-bb"), b"partial").unwrap();

    // Age 0 sweeps unconditionally; real entries are untouched.
    assert_eq!(sweep_temp_files(&dir, Duration::ZERO).unwrap(), 2);
    assert!(dir.join("entry.json").exists());
    assert!(temp_files_in(&dir).is_empty());

    // A fresh temp file survives an aged sweep (it could be a live
    // concurrent writer's).
    std::fs::write(dir.join("live.tmp-1-cc"), b"in flight").unwrap();
    assert_eq!(
        sweep_temp_files(&dir, Duration::from_secs(15 * 60)).unwrap(),
        0
    );
    assert!(dir.join("live.tmp-1-cc").exists());

    // A missing directory is 0 removed, not an error.
    assert_eq!(
        sweep_temp_files(&fresh_dir("sweep-nonexistent"), Duration::ZERO).unwrap(),
        0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn session_startup_sweeps_aged_orphans() {
    let dir = fresh_dir("auto-sweep");
    std::fs::create_dir_all(&dir).unwrap();
    let orphan = dir.join("crashed.tmp-42-dead");
    std::fs::write(&orphan, b"from a crashed writer").unwrap();
    // Age the orphan past TEMP_SWEEP_AGE (15 min).
    let old = std::time::SystemTime::now() - Duration::from_secs(16 * 60);
    std::fs::File::options()
        .write(true)
        .open(&orphan)
        .unwrap()
        .set_modified(old)
        .unwrap();
    let fresh = dir.join("live.tmp-43-beef");
    std::fs::write(&fresh, b"live writer").unwrap();

    let mut spec = ExperimentSpec::subset(vec![ProtocolKind::Mesi], vec![], ScaleProfile::Tiny);
    spec.workloads = vec![WorkloadSpec::provided("synth")];
    let mut set = WorkloadSet::new();
    set.insert("synth", synthesize(11));
    Session::new()
        .with_cache_dir(&dir)
        .run(&spec, &set)
        .unwrap();

    assert!(!orphan.exists(), "first execute must sweep aged orphans");
    assert!(
        fresh.exists(),
        "fresh temp files must survive the auto-sweep"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Two processes, one cache directory.
// ---------------------------------------------------------------------------

/// Extracts `"field": N` from a stats JSON document (the document holds
/// floats, so the experiment-layer parser deliberately rejects it; the
/// integer counters are greppable).
fn stat_u64(text: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\": ");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("{field} in {text}"));
    text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

#[test]
fn two_processes_racing_on_one_cache_dir_agree_bitwise() {
    let scratch = fresh_dir("two-proc");
    std::fs::create_dir_all(&scratch).unwrap();
    let cache = scratch.join("shared-cache");
    let spec_path = scratch.join("spec.json");
    // A small-but-real plan: 2 protocols x 2 benches at tiny scale.
    let spec = ExperimentSpec::subset(
        vec![ProtocolKind::Mesi, ProtocolKind::DBypFull],
        vec![
            tw_workloads::BenchmarkKind::Fft,
            tw_workloads::BenchmarkKind::Radix,
        ],
        ScaleProfile::Tiny,
    );
    std::fs::write(&spec_path, spec.to_json()).unwrap();

    let run = |tag: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_experiments"))
            .current_dir(&scratch)
            .args([
                "plan",
                "run",
                "spec.json",
                "--cache",
                "shared-cache",
                "--json",
                &format!("figures-{tag}.json"),
                "--stats",
                &format!("stats-{tag}.json"),
            ])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .unwrap()
    };

    // Both processes start cold on the same directory and race every key.
    let mut a = run("a");
    let mut b = run("b");
    assert!(a.wait().unwrap().success());
    assert!(b.wait().unwrap().success());

    // Bit-identical figure documents.
    let fig_a = std::fs::read(scratch.join("figures-a.json")).unwrap();
    let fig_b = std::fs::read(scratch.join("figures-b.json")).unwrap();
    assert!(!fig_a.is_empty());
    assert_eq!(fig_a, fig_b, "racing processes must agree bitwise");

    // No torn or leftover temp entries.
    assert_eq!(temp_files_in(&cache), Vec::<String>::new());

    // Stats account for the race: each process accounts all 4 of its cells,
    // and every key was simulated by at least one process (a process that
    // lost every race would be 4 hits / 0 misses — legal).
    let stats_a = std::fs::read_to_string(scratch.join("stats-a.json")).unwrap();
    let stats_b = std::fs::read_to_string(scratch.join("stats-b.json")).unwrap();
    for stats in [&stats_a, &stats_b] {
        assert_eq!(stat_u64(stats, "cells"), 4);
        assert_eq!(
            stat_u64(stats, "hits") + stat_u64(stats, "misses") + stat_u64(stats, "coalesced"),
            4
        );
    }
    assert!(
        stat_u64(&stats_a, "misses") + stat_u64(&stats_b, "misses") >= 4,
        "every key must have been simulated by at least one process"
    );

    // The surviving entries are not torn: a third (warm) run is 100% hits.
    let warm = std::process::Command::new(env!("CARGO_BIN_EXE_experiments"))
        .current_dir(&scratch)
        .args([
            "plan",
            "run",
            "spec.json",
            "--cache",
            "shared-cache",
            "--stats",
            "stats-warm.json",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .unwrap();
    assert!(warm.success());
    let stats_warm = std::fs::read_to_string(scratch.join("stats-warm.json")).unwrap();
    assert_eq!(stat_u64(&stats_warm, "hits"), 4);
    assert_eq!(stat_u64(&stats_warm, "misses"), 0);

    let _ = std::fs::remove_dir_all(&scratch);
}
