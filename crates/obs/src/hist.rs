//! Fixed-bucket log2 latency histograms.
//!
//! A [`Log2Histogram`] has 65 power-of-two buckets: bucket 0 holds the value
//! 0, bucket `i` (1..=64) holds `[2^(i-1), 2^i - 1]`. Recording is lock-free
//! (relaxed atomics — the histogram is a monitor, not a synchronizer), so
//! daemon workers share one instance without coordination. Percentiles are
//! resolved to the upper bound of the first bucket whose cumulative count
//! reaches the rank, clamped to the observed maximum so a lone sample in a
//! wide bucket does not report a latency nobody saw.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 65;

/// A concurrent fixed-bucket histogram over `u64` values (microseconds, in
/// this workspace).
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else one past the highest set bit.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Integer mean of recorded values (0 when empty).
    pub fn avg(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `p`-th percentile (`0..=100`): the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(count * p / 100)`,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn percentile(&self, p: u8) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = (count * u64::from(p)).div_ceil(100).max(1);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= rank {
                return bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Renders the histogram in Prometheus text exposition format:
    /// `# HELP` / `# TYPE` lines, cumulative `_bucket{le="..."}` samples for
    /// every non-empty bucket plus `le="+Inf"`, then `_sum` and `_count`.
    pub fn render_prometheus(&self, name: &str, help: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            cumulative += n;
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper(i)
            );
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", self.count());
        let _ = writeln!(out, "{name}_sum {}", self.sum());
        let _ = writeln!(out, "{name}_count {}", self.count());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn aggregates_and_percentiles() {
        let h = Log2Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 400);
        assert_eq!(h.avg(), 200);
        assert_eq!(h.max(), 300);
        // 100 lands in [64,127] -> upper 127; 300 in [256,511] -> clamped to max.
        assert_eq!(h.percentile(50), 127);
        assert_eq!(h.percentile(95), 300);
        assert_eq!(h.percentile(99), 300);
    }

    #[test]
    fn empty_and_zero_values() {
        let h = Log2Histogram::new();
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.avg(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(99), 0);
    }

    #[test]
    fn single_sample_clamps_to_observed_value() {
        let h = Log2Histogram::new();
        h.record(1500);
        // Bucket upper is 2047 but nobody saw 2047.
        assert_eq!(h.percentile(50), 1500);
        assert_eq!(h.percentile(99), 1500);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_well_formed() {
        let h = Log2Histogram::new();
        h.record(100);
        h.record(100);
        h.record(300);
        let text = h.render_prometheus("tw_latency_us", "request latency");
        assert!(text.starts_with("# HELP tw_latency_us request latency\n"));
        assert!(text.contains("# TYPE tw_latency_us histogram\n"));
        assert!(text.contains("tw_latency_us_bucket{le=\"127\"} 2\n"));
        assert!(text.contains("tw_latency_us_bucket{le=\"511\"} 3\n"));
        assert!(text.contains("tw_latency_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("tw_latency_us_sum 500\n"));
        assert!(text.ends_with("tw_latency_us_count 3\n"));
    }
}
