//! Flight-recorder telemetry for the traffic-waste study.
//!
//! This crate is the *observer lane* of the simulator: structured spans
//! recorded by the engine, the experiment session and the daemon, a
//! deterministic JSONL trace format to persist them, and fixed-bucket log2
//! histograms for service latency exposition. Nothing here may influence a
//! simulated number — recording is wired through [`Recorder`], whose no-op
//! implementation compiles down to a dead branch, and every consumer treats
//! the recorder as write-only (see DESIGN.md §15 for the observer-lane
//! argument).
//!
//! # Determinism contract
//!
//! A trace file byte-diffs *modulo timing*: every span quarantines its
//! wall-clock fields in a `timing` sub-object, and everything outside that
//! sub-object — track, name, attributes, sequence numbers — is a pure
//! function of the run's inputs. [`strip_timing`] removes the sub-object
//! from a serialized line; two traces of the same run compare byte-equal
//! after stripping, exactly like the figures JSON does with wall time.
//!
//! Serialization sorts spans by track (stable, preserving within-track
//! emission order) before assigning sequence numbers, so a parallel run —
//! where cells finish in scheduler order — still serializes to the same
//! bytes as a serial one.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use tw_obs::{AttrValue, FlightRecorder, Recorder, Span, SpanSink};
//!
//! let rec = Arc::new(FlightRecorder::new());
//! let sink = SpanSink::new(rec.clone(), "FFT/MESI");
//! sink.emit(Span::event("cell").attr("outcome", "simulated").timing_us("sim_us", 1234));
//! let trace = rec.to_jsonl();
//! let summary = tw_obs::validate_trace(&trace).unwrap();
//! assert_eq!(summary.spans, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod recorder;
pub mod span;
pub mod trace;

pub use hist::Log2Histogram;
pub use recorder::{FlightRecorder, NoopRecorder, Recorder, SpanSink};
pub use span::{AttrValue, Span};
pub use trace::{
    diff_traces, strip_timing, stripped_lines, validate_trace, TraceError, TraceSummary,
    TRACE_SCHEMA,
};
