//! Structured spans: the unit of flight-recorder telemetry.
//!
//! A [`Span`] is one observed episode — a barrier phase inside the engine, a
//! cell executed by the session, a request served by the daemon — addressed
//! by a *track* (the grouping key: cell label, request id) and a *name* (the
//! span kind within the track). Deterministic payload lives in `attrs`;
//! wall-clock measurements are quarantined in `timing` so serialized traces
//! byte-diff modulo timing (see the crate docs).

/// One attribute value. The deterministic payload deliberately supports only
/// unsigned integers and strings — floats would drag formatting questions
/// into the byte-identity contract (deterministic f64s travel as
/// fixed-precision strings, exactly like the daemon's wire JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One recorded span. `track` is filled in by the [`crate::SpanSink`] that
/// emits it; builders construct the rest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Grouping key: the cell label, request id, or subsystem the span
    /// belongs to. Serialization orders spans by track.
    pub track: String,
    /// Span kind within the track (`phase`, `cell`, `run`, `request`).
    pub name: String,
    /// Deterministic payload, serialized in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
    /// Wall-clock fields (microseconds), quarantined in the serialized
    /// `timing` sub-object and stripped before byte comparison.
    pub timing: Vec<(String, u64)>,
}

impl Span {
    /// A span with the given name and no payload yet; the emitting sink
    /// assigns the track.
    pub fn event(name: impl Into<String>) -> Span {
        Span {
            track: String::new(),
            name: name.into(),
            attrs: Vec::new(),
            timing: Vec::new(),
        }
    }

    /// Appends one deterministic attribute.
    #[must_use]
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<AttrValue>) -> Span {
        self.attrs.push((key.into(), value.into()));
        self
    }

    /// Appends one wall-clock field (microseconds) to the quarantined
    /// `timing` sub-object.
    #[must_use]
    pub fn timing_us(mut self, key: impl Into<String>, us: u64) -> Span {
        self.timing.push((key.into(), us));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let s = Span::event("phase")
            .attr("phase", 3u64)
            .attr("proto", "MESI")
            .timing_us("wall_us", 17);
        assert_eq!(s.name, "phase");
        assert_eq!(
            s.attrs,
            vec![
                ("phase".to_string(), AttrValue::U64(3)),
                ("proto".to_string(), AttrValue::Str("MESI".to_string())),
            ]
        );
        assert_eq!(s.timing, vec![("wall_us".to_string(), 17)]);
    }
}
