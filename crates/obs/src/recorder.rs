//! The [`Recorder`] trait and its two implementations.
//!
//! Everything that can observe a run takes a recorder handle; the default is
//! [`NoopRecorder`], whose `enabled()` is a constant `false` so every
//! emission site reduces to one predictable branch (the ops/sec gate in CI
//! verifies the hot path does not pay for telemetry it is not producing).
//! [`FlightRecorder`] buffers spans in memory and serializes them as the
//! deterministic JSONL trace described in [`crate::trace`].

use crate::span::{AttrValue, Span};
use crate::trace::TRACE_SCHEMA;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// A write-only span sink. Implementations must be cheap to probe via
/// `enabled()` — emission sites guard span *construction* on it, so a
/// disabled recorder costs one branch, not one allocation.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether spans are being captured. Sites skip building spans when
    /// this is `false`.
    fn enabled(&self) -> bool;

    /// Accepts one span. Must not panic; must not observe or influence the
    /// caller beyond consuming the span.
    fn record(&self, span: Span);
}

/// The compiled-out default: never enabled, drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _span: Span) {}
}

/// An in-memory flight recorder. Spans are appended under a mutex (cells
/// fan out on rayon; contention is one push per span, not per simulated
/// op) and serialized deterministically by [`FlightRecorder::to_jsonl`].
#[derive(Debug, Default)]
pub struct FlightRecorder {
    spans: Mutex<Vec<Span>>,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Number of spans captured so far.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("flight recorder lock").len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the captured spans, in arrival order.
    pub fn spans(&self) -> Vec<Span> {
        self.spans.lock().expect("flight recorder lock").clone()
    }

    /// Serializes the captured spans as the deterministic JSONL trace:
    /// a header line naming the schema and span count, then one compact
    /// JSON object per span.
    ///
    /// Spans are stably sorted by track before sequence numbers are
    /// assigned, so the output does not depend on the order parallel cells
    /// happened to finish in — only on the (deterministic) per-track
    /// emission order and the set of tracks.
    pub fn to_jsonl(&self) -> String {
        let mut spans = self.spans();
        spans.sort_by(|a, b| a.track.cmp(&b.track));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"spans\":{}}}",
            spans.len()
        );
        for (seq, span) in spans.iter().enumerate() {
            write_span_line(&mut out, seq as u64, span);
        }
        out
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, span: Span) {
        self.spans.lock().expect("flight recorder lock").push(span);
    }
}

/// Serializes one span as a compact single-line JSON object. The `timing`
/// sub-object is always present and always last, which is what lets
/// [`crate::strip_timing`] remove it with a linear scan.
fn write_span_line(out: &mut String, seq: u64, span: &Span) {
    let _ = write!(
        out,
        "{{\"seq\":{seq},\"track\":\"{}\",\"name\":\"{}\",\"attrs\":{{",
        escape(&span.track),
        escape(&span.name)
    );
    for (i, (key, value)) in span.attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", escape(key));
        match value {
            AttrValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            AttrValue::Str(s) => {
                let _ = write!(out, "\"{}\"", escape(s));
            }
        }
    }
    out.push_str("},\"timing\":{");
    for (i, (key, us)) in span.timing.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{us}", escape(key));
    }
    out.push_str("}}\n");
}

/// JSON string escaping (same rules as the workspace's hand-rolled JSON
/// emitters: backslash, quote, and control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A cloneable handle binding a recorder to one track. This is what the
/// simulator configuration and the differential runner carry: emission
/// sites call [`SpanSink::emit`] without knowing which recorder (if any)
/// is behind it.
#[derive(Debug, Clone)]
pub struct SpanSink {
    recorder: Arc<dyn Recorder>,
    track: String,
}

impl SpanSink {
    /// A sink writing to `recorder` under `track`.
    pub fn new(recorder: Arc<dyn Recorder>, track: impl Into<String>) -> SpanSink {
        SpanSink {
            recorder,
            track: track.into(),
        }
    }

    /// Whether the underlying recorder captures spans. Guard span
    /// construction on this.
    pub fn enabled(&self) -> bool {
        self.recorder.enabled()
    }

    /// The track this sink emits under.
    pub fn track(&self) -> &str {
        &self.track
    }

    /// The same recorder under a different track (how the session derives
    /// per-cell sinks from its run-level recorder).
    pub fn with_track(&self, track: impl Into<String>) -> SpanSink {
        SpanSink {
            recorder: Arc::clone(&self.recorder),
            track: track.into(),
        }
    }

    /// Emits one span on this sink's track.
    pub fn emit(&self, mut span: Span) {
        if !self.recorder.enabled() {
            return;
        }
        span.track.clone_from(&self.track);
        self.recorder.record(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{stripped_lines, validate_trace};

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let noop = NoopRecorder;
        assert!(!noop.enabled());
        noop.record(Span::event("cell")); // must not panic
    }

    #[test]
    fn serialization_sorts_by_track_and_numbers_sequentially() {
        let rec = FlightRecorder::new();
        SpanSink::new(Arc::new(NoopRecorder), "ignored").emit(Span::event("dropped"));
        let rec = Arc::new(rec);
        // Emit on tracks out of lexicographic order, as parallel cells would.
        SpanSink::new(rec.clone(), "b/cell").emit(Span::event("cell").attr("n", 1u64));
        SpanSink::new(rec.clone(), "a/cell").emit(Span::event("phase").attr("n", 2u64));
        SpanSink::new(rec.clone(), "a/cell").emit(Span::event("cell").attr("n", 3u64));
        let text = rec.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"spans\":3"));
        // a/cell's two spans first (emission order preserved), then b/cell.
        assert!(lines[1].starts_with("{\"seq\":0,\"track\":\"a/cell\",\"name\":\"phase\""));
        assert!(lines[2].starts_with("{\"seq\":1,\"track\":\"a/cell\",\"name\":\"cell\""));
        assert!(lines[3].starts_with("{\"seq\":2,\"track\":\"b/cell\",\"name\":\"cell\""));
        assert_eq!(validate_trace(&text).unwrap().spans, 3);
    }

    #[test]
    fn timing_is_quarantined_and_strippable() {
        let rec = Arc::new(FlightRecorder::new());
        let sink = SpanSink::new(rec.clone(), "t");
        sink.emit(
            Span::event("cell")
                .attr("label", "x\"y") // escaping must not confuse the stripper
                .timing_us("wall_us", 123),
        );
        let with = rec.to_jsonl();
        assert!(with.contains("\"timing\":{\"wall_us\":123}"));
        let stripped = stripped_lines(&with).unwrap();
        assert!(!stripped[1].contains("wall_us"));
        assert!(stripped[1].contains("x\\\"y"));
    }

    #[test]
    fn escape_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
