//! The flight-trace JSONL format: validation, timing-stripping and diff.
//!
//! A trace file is one header line plus one compact JSON object per span:
//!
//! ```text
//! {"schema":"denovo-waste/flight/v1","spans":N}
//! {"seq":0,"track":"...","name":"...","attrs":{...},"timing":{...}}
//! ...
//! {"seq":N-1,...}
//! ```
//!
//! The header's span count is the truncation detector, mirroring the DNVT
//! binary format's end-marker contract: a file with fewer span lines than
//! the header promises is rejected with a *named* [`TraceError::Truncated`]
//! (not silently accepted as a shorter trace), and any structural damage —
//! bad header, out-of-sequence `seq`, a line that is not a span object — is
//! [`TraceError::Corrupt`] with the offense in the message.

/// Schema identifier carried by every trace header.
pub const TRACE_SCHEMA: &str = "denovo-waste/flight/v1";

/// Why a trace file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The file ends before the span count promised by its header —
    /// the writer crashed or the file was cut mid-stream.
    Truncated {
        /// Span lines the header promised.
        expected: u64,
        /// Span lines actually present.
        found: u64,
    },
    /// The file is structurally damaged: bad header, out-of-sequence
    /// numbering, surplus lines, or a malformed span line.
    Corrupt(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Truncated { expected, found } => write!(
                f,
                "truncated trace: header promises {expected} spans, found {found}"
            ),
            TraceError::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// What a validated trace contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Number of span lines.
    pub spans: u64,
}

/// Validates a trace's framing: header schema and span count, one
/// well-formed span line per promised span, sequence numbers `0..N` in
/// order, nothing after the last span.
///
/// # Errors
///
/// [`TraceError::Truncated`] when span lines are missing,
/// [`TraceError::Corrupt`] for any other structural damage.
pub fn validate_trace(text: &str) -> Result<TraceSummary, TraceError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| TraceError::Corrupt("empty file".to_string()))?;
    let expected = parse_header(header)?;
    let mut found = 0u64;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if found >= expected {
            return Err(TraceError::Corrupt(format!(
                "{} span lines after the {expected} the header promises",
                found + 1 - expected
            )));
        }
        let seq = parse_seq(line)
            .ok_or_else(|| TraceError::Corrupt(format!("span line {found} is malformed")))?;
        if seq != found {
            return Err(TraceError::Corrupt(format!(
                "span line {found} carries seq {seq}; sequence numbers must be consecutive"
            )));
        }
        found += 1;
    }
    if found < expected {
        return Err(TraceError::Truncated { expected, found });
    }
    Ok(TraceSummary { spans: expected })
}

fn parse_header(header: &str) -> Result<u64, TraceError> {
    let prefix = format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"spans\":");
    let rest = header
        .strip_prefix(prefix.as_str())
        .ok_or_else(|| TraceError::Corrupt(format!("header must open with {prefix}...")))?;
    let digits = rest
        .strip_suffix('}')
        .ok_or_else(|| TraceError::Corrupt("header must close with `}`".to_string()))?;
    digits
        .parse::<u64>()
        .map_err(|_| TraceError::Corrupt(format!("header span count `{digits}` is not a number")))
}

/// Extracts the `seq` of a span line, requiring the exact serialized shape
/// (`{"seq":N,"track":...` with a closing `}`).
fn parse_seq(line: &str) -> Option<u64> {
    let rest = line.strip_prefix("{\"seq\":")?;
    if !line.ends_with('}') {
        return None;
    }
    let end = rest.find(',')?;
    let seq = rest[..end].parse::<u64>().ok()?;
    rest[end..].starts_with(",\"track\":").then_some(seq)
}

/// Removes the `"timing":{...}` sub-object from one serialized span line.
/// String-literal state is tracked, so attribute values containing the text
/// `"timing"` are left alone; only the top-level key is stripped. Lines
/// without a top-level `timing` key (the header) pass through unchanged.
pub fn strip_timing(line: &str) -> String {
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match b {
            b'"' => {
                if depth == 1 && bytes[i..].starts_with(b"\"timing\":{") {
                    // Find the matching close brace of the timing object.
                    let value_start = i + "\"timing\":".len();
                    if let Some(end) = object_end(bytes, value_start) {
                        // Swallow the separating comma on whichever side has
                        // one (the writer puts timing last, so usually the
                        // preceding comma).
                        let mut start = i;
                        let mut stop = end;
                        if start > 0 && bytes[start - 1] == b',' {
                            start -= 1;
                        } else if stop < bytes.len() && bytes[stop] == b',' {
                            stop += 1;
                        }
                        let mut out = String::with_capacity(line.len());
                        out.push_str(&line[..start]);
                        out.push_str(&line[stop..]);
                        return out;
                    }
                }
                in_string = true;
            }
            b'{' => depth += 1,
            b'}' => depth = depth.saturating_sub(1),
            _ => {}
        }
        i += 1;
    }
    line.to_string()
}

/// Index one past the close brace of the object starting at `start`
/// (`bytes[start]` must be `{`), honoring string literals.
fn object_end(bytes: &[u8], start: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate().skip(start) {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Validates a trace and returns its lines with timing stripped (header
/// included, unmodified) — the canonical form two traces of the same run
/// compare byte-equal in.
///
/// # Errors
///
/// Any [`TraceError`] from [`validate_trace`].
pub fn stripped_lines(text: &str) -> Result<Vec<String>, TraceError> {
    validate_trace(text)?;
    Ok(text
        .lines()
        .filter(|l| !l.is_empty())
        .map(strip_timing)
        .collect())
}

/// Diffs two traces modulo timing. `None` means identical; `Some` names the
/// first divergence (span count or first differing line).
///
/// # Errors
///
/// Any [`TraceError`] from validating either input.
pub fn diff_traces(a: &str, b: &str) -> Result<Option<String>, TraceError> {
    let la = stripped_lines(a)?;
    let lb = stripped_lines(b)?;
    if la.len() != lb.len() {
        return Ok(Some(format!(
            "span counts differ: {} vs {}",
            la.len().saturating_sub(1),
            lb.len().saturating_sub(1)
        )));
    }
    for (i, (x, y)) in la.iter().zip(&lb).enumerate() {
        if x != y {
            return Ok(Some(format!("line {i}:\n  a: {x}\n  b: {y}")));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{FlightRecorder, SpanSink};
    use crate::span::Span;
    use std::sync::Arc;

    fn sample_trace() -> String {
        let rec = Arc::new(FlightRecorder::new());
        let sink = SpanSink::new(rec.clone(), "FFT/MESI");
        sink.emit(Span::event("phase").attr("phase", 0u64));
        sink.emit(
            Span::event("cell")
                .attr("outcome", "simulated")
                .timing_us("sim_us", 42),
        );
        rec.to_jsonl()
    }

    #[test]
    fn valid_trace_validates() {
        let t = sample_trace();
        assert_eq!(validate_trace(&t).unwrap(), TraceSummary { spans: 2 });
    }

    #[test]
    fn truncated_trace_is_a_named_error() {
        let t = sample_trace();
        let cut: String = t.lines().take(2).map(|l| format!("{l}\n")).collect();
        assert_eq!(
            validate_trace(&cut),
            Err(TraceError::Truncated {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn surplus_lines_bad_header_and_bad_seq_are_corrupt() {
        let t = sample_trace();
        let extra = format!("{t}{}", t.lines().nth(2).unwrap());
        assert!(matches!(
            validate_trace(&extra),
            Err(TraceError::Corrupt(_))
        ));

        let bad_header = t.replacen("flight/v1", "flight/v9", 1);
        assert!(matches!(
            validate_trace(&bad_header),
            Err(TraceError::Corrupt(_))
        ));

        let bad_seq = t.replacen("{\"seq\":1,", "{\"seq\":7,", 1);
        assert!(matches!(
            validate_trace(&bad_seq),
            Err(TraceError::Corrupt(_))
        ));

        assert!(matches!(validate_trace(""), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn strip_timing_ignores_lookalike_attr_values() {
        let rec = Arc::new(FlightRecorder::new());
        let sink = SpanSink::new(rec.clone(), "t");
        sink.emit(
            Span::event("cell")
                .attr("note", "\"timing\":{ inside a string")
                .timing_us("wall_us", 5),
        );
        let line = rec.to_jsonl().lines().nth(1).unwrap().to_string();
        let stripped = strip_timing(&line);
        assert!(stripped.contains("inside a string"));
        assert!(!stripped.contains("wall_us"));
        assert!(stripped.ends_with("}}"));
    }

    #[test]
    fn diff_is_none_for_same_run_and_names_first_divergence() {
        let a = sample_trace();
        let b = sample_trace();
        assert_eq!(diff_traces(&a, &b).unwrap(), None);
        // Different timing only: still identical.
        let b_timed = b.replace("\"sim_us\":42", "\"sim_us\":9000");
        assert_eq!(diff_traces(&a, &b_timed).unwrap(), None);
        // Different attr: named divergence.
        let b_attr = a.replace("\"outcome\":\"simulated\"", "\"outcome\":\"hit\"");
        let d = diff_traces(&a, &b_attr).unwrap().unwrap();
        assert!(d.contains("line 2"), "{d}");
    }
}
