//! DRAM and memory-controller timing model.
//!
//! Each of the four corner tiles hosts a memory controller driving a single
//! DDR3-1066 channel with eight banks and two ranks, FR-FCFS scheduling and
//! an open-page policy (paper Table 4.1). The model tracks, per bank, the
//! currently open row and the cycle the bank becomes free; a request pays the
//! row-hit or row-miss latency plus any bank/channel queueing delay. This is
//! the first-order behaviour DRAMSim2 provides that matters for the study:
//! the `Mem` component of execution time and the benefit of keeping requests
//! within an open row (which the L2-Flex optimization exploits).
//!
//! # Example
//!
//! ```
//! use tw_dram::MemoryController;
//! use tw_types::{DramConfig, LineAddr};
//!
//! let mut mc = MemoryController::new(DramConfig::default());
//! let line = LineAddr::from_aligned(0x10_0000);
//! let first = mc.access(line, false, 0);
//! let second = mc.access(line.next(64, 1), false, first);
//! assert!(second > first, "second access completes later");
//! assert_eq!(mc.stats().row_hits, 1, "same row stays open");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;

pub use controller::{DramStats, MemoryController};
