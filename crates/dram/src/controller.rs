//! The per-channel memory controller.

use tw_types::{Cycle, DramConfig, LineAddr};

/// Counters exposed by a [`MemoryController`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
    /// Accesses that hit the open row of their bank.
    pub row_hits: u64,
    /// Accesses that required closing/opening a row.
    pub row_misses: u64,
    /// Total cycles requests spent queued behind busy banks or the channel.
    pub queueing_cycles: u64,
    /// Total cycles of service time (excluding queueing).
    pub service_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate over all accesses (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    free_at: Cycle,
}

/// One memory channel with its controller.
///
/// FR-FCFS is approximated at transaction granularity: a request to a bank
/// whose open row matches is serviced with the row-hit latency as soon as the
/// bank and channel are free; otherwise it pays the activate+CAS penalty.
/// The data burst occupies the channel for `burst_cycles`.
#[derive(Debug, Clone)]
pub struct MemoryController {
    cfg: DramConfig,
    banks: Vec<Bank>,
    channel_free_at: Cycle,
    stats: DramStats,
}

impl MemoryController {
    /// Creates an idle controller.
    pub fn new(cfg: DramConfig) -> Self {
        let banks = vec![Bank::default(); cfg.banks * cfg.ranks];
        MemoryController {
            cfg,
            banks,
            channel_free_at: 0,
            stats: DramStats::default(),
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        // Interleave lines across banks within a row's worth of address.
        ((line.byte() / self.cfg.row_bytes) as usize) % self.banks.len()
    }

    /// Whether an access to `line` would hit the currently open row.
    pub fn would_row_hit(&self, line: LineAddr) -> bool {
        let bank = &self.banks[self.bank_of(line)];
        bank.open_row == Some(line.dram_row(self.cfg.row_bytes))
    }

    /// Performs an access to `line` issued at cycle `now`.
    ///
    /// Returns the cycle at which the data transfer completes (for reads,
    /// when the critical line is available at the controller; for writes,
    /// when the write has been retired to the bank).
    pub fn access(&mut self, line: LineAddr, is_write: bool, now: Cycle) -> Cycle {
        let row = line.dram_row(self.cfg.row_bytes);
        let bank_idx = self.bank_of(line);
        let bank = &mut self.banks[bank_idx];

        let ready = now.max(bank.free_at).max(self.channel_free_at);
        let queueing = ready - now;

        let (access_cycles, hit) = if bank.open_row == Some(row) {
            (self.cfg.row_hit_cycles, true)
        } else {
            (self.cfg.row_miss_cycles, false)
        };
        bank.open_row = Some(row);

        let service = access_cycles + self.cfg.burst_cycles;
        let done = ready + service;
        bank.free_at = done;
        // The channel is only occupied for the burst portion.
        self.channel_free_at = done;

        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.queueing_cycles += queueing;
        self.stats.service_cycles += service;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemoryController {
        MemoryController::new(DramConfig::default())
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::from_aligned(n * 64)
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut m = mc();
        let cfg = m.config().clone();
        let done = m.access(line(0), false, 0);
        assert_eq!(done, cfg.row_miss_cycles + cfg.burst_cycles);
        assert_eq!(m.stats().row_misses, 1);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn same_row_access_hits_open_row() {
        let mut m = mc();
        let t1 = m.access(line(0), false, 0);
        assert!(
            m.would_row_hit(line(1)),
            "next line is in the same 8 KB row"
        );
        let t2 = m.access(line(1), false, t1);
        let cfg = m.config().clone();
        assert_eq!(t2 - t1, cfg.row_hit_cycles + cfg.burst_cycles);
        assert!((m.stats().row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut m = mc();
        let cfg = m.config().clone();
        let banks = (cfg.banks * cfg.ranks) as u64;
        let lines_per_row = cfg.row_bytes / 64;
        m.access(line(0), false, 0);
        // Same bank, different row: row index differs by `banks`.
        let conflicting = line(banks * lines_per_row);
        assert!(!m.would_row_hit(conflicting));
        m.access(conflicting, false, 0);
        assert_eq!(m.stats().row_misses, 2);
        assert!(
            m.stats().queueing_cycles > 0,
            "second request queued behind first"
        );
    }

    #[test]
    fn writes_are_counted_separately() {
        let mut m = mc();
        m.access(line(0), true, 0);
        m.access(line(1), false, 0);
        assert_eq!(m.stats().writes, 1);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn queueing_respects_issue_time() {
        let mut m = mc();
        let t1 = m.access(line(0), false, 0);
        // Issued long after the first completes: no queueing for this one.
        let before = m.stats().queueing_cycles;
        m.access(line(100_000), false, t1 + 10_000);
        assert_eq!(m.stats().queueing_cycles, before);
    }

    #[test]
    fn row_hit_rate_idle_is_zero() {
        assert_eq!(DramStats::default().row_hit_rate(), 0.0);
    }
}
