//! Helpers for emitting per-core traces.

use tw_types::{Addr, RegionId, TraceOp, WORD_BYTES};

/// A per-core trace under construction.
///
/// The builder provides word- and element-granular access helpers so the
/// benchmark generators read like the loops of the original programs.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    ops: Vec<TraceOp>,
}

impl TraceBuilder {
    /// Creates an empty trace.
    pub fn new() -> Self {
        TraceBuilder::default()
    }

    /// Number of records emitted so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no records have been emitted.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Emits a load of the word at `addr`.
    pub fn load(&mut self, addr: Addr, region: RegionId) -> &mut Self {
        self.ops.push(TraceOp::load(addr, region));
        self
    }

    /// Emits a store to the word at `addr`.
    pub fn store(&mut self, addr: Addr, region: RegionId) -> &mut Self {
        self.ops.push(TraceOp::store(addr, region));
        self
    }

    /// Emits `cycles` of non-memory work (coalesced with a preceding compute
    /// record when possible to keep traces compact).
    pub fn compute(&mut self, cycles: u32) -> &mut Self {
        if cycles == 0 {
            return self;
        }
        if let Some(TraceOp::Compute { cycles: prev }) = self.ops.last_mut() {
            *prev = prev.saturating_add(cycles);
        } else {
            self.ops.push(TraceOp::compute(cycles));
        }
        self
    }

    /// Emits a barrier.
    pub fn barrier(&mut self, id: u32) -> &mut Self {
        self.ops.push(TraceOp::barrier(id));
        self
    }

    /// Loads `words` consecutive words starting at `addr`.
    pub fn load_words(&mut self, addr: Addr, words: usize, region: RegionId) -> &mut Self {
        for i in 0..words {
            self.load(addr.offset(i as u64 * WORD_BYTES), region);
        }
        self
    }

    /// Stores `words` consecutive words starting at `addr`.
    pub fn store_words(&mut self, addr: Addr, words: usize, region: RegionId) -> &mut Self {
        for i in 0..words {
            self.store(addr.offset(i as u64 * WORD_BYTES), region);
        }
        self
    }

    /// Finishes the trace.
    pub fn into_ops(self) -> Vec<TraceOp> {
        self.ops
    }
}

/// A typed view of an array laid out at a fixed base address, used by the
/// generators to turn element indices into word addresses.
#[derive(Debug, Clone, Copy)]
pub struct ArrayLayout {
    /// Base byte address.
    pub base: Addr,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Number of elements.
    pub elems: u64,
    /// Region the array belongs to.
    pub region: RegionId,
}

impl ArrayLayout {
    /// Creates a layout description.
    pub fn new(base: u64, elem_bytes: u64, elems: u64, region: RegionId) -> Self {
        ArrayLayout {
            base: Addr::new(base),
            elem_bytes,
            elems,
            region,
        }
    }

    /// Total footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.elem_bytes * self.elems
    }

    /// Address of byte `offset` within element `idx`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `idx` is out of bounds.
    pub fn field(&self, idx: u64, offset: u64) -> Addr {
        debug_assert!(
            idx < self.elems,
            "element {idx} out of bounds ({})",
            self.elems
        );
        debug_assert!(offset < self.elem_bytes);
        Addr::new(self.base.byte() + idx * self.elem_bytes + offset)
    }

    /// Address of element `idx` (offset 0).
    pub fn elem(&self, idx: u64) -> Addr {
        self.field(idx, 0)
    }

    /// Number of words each element occupies (rounded up).
    pub fn words_per_elem(&self) -> usize {
        self.elem_bytes.div_ceil(WORD_BYTES) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_in_program_order() {
        let mut b = TraceBuilder::new();
        b.load(Addr::new(0), RegionId(1))
            .store(Addr::new(4), RegionId(1))
            .compute(10)
            .barrier(0);
        let ops = b.into_ops();
        assert_eq!(ops.len(), 4);
        assert!(matches!(ops[0], TraceOp::Mem { .. }));
        assert!(matches!(ops[3], TraceOp::Barrier { id: 0 }));
    }

    #[test]
    fn compute_records_coalesce() {
        let mut b = TraceBuilder::new();
        b.compute(5).compute(7).compute(0);
        let ops = b.into_ops();
        assert_eq!(ops.len(), 1);
        assert!(matches!(ops[0], TraceOp::Compute { cycles: 12 }));
    }

    #[test]
    fn bulk_word_helpers() {
        let mut b = TraceBuilder::new();
        b.load_words(Addr::new(0x100), 4, RegionId(2));
        b.store_words(Addr::new(0x200), 2, RegionId(2));
        let ops = b.into_ops();
        assert_eq!(ops.len(), 6);
        match ops[3] {
            TraceOp::Mem { addr, .. } => assert_eq!(addr, Addr::new(0x10c)),
            _ => panic!("expected a memory op"),
        }
    }

    #[test]
    fn array_layout_addressing() {
        let a = ArrayLayout::new(0x1000, 24, 100, RegionId(3));
        assert_eq!(a.bytes(), 2400);
        assert_eq!(a.elem(0), Addr::new(0x1000));
        assert_eq!(a.elem(2), Addr::new(0x1000 + 48));
        assert_eq!(a.field(1, 8), Addr::new(0x1000 + 32));
        assert_eq!(a.words_per_elem(), 6);
    }

    #[test]
    fn empty_builder_reports_empty() {
        assert!(TraceBuilder::new().is_empty());
        assert_eq!(TraceBuilder::new().len(), 0);
    }
}
