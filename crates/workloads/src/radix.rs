//! SPLASH-2 radix sort.
//!
//! One counting-sort pass over 32-bit keys with a 1024-entry radix. The
//! properties the paper's analysis depends on:
//!
//! * the permutation phase writes the destination array at 1024 scattered
//!   bucket cursors — more lines than the L1 can hold, so partially written
//!   lines are evicted and refetched (`Evict` waste under fetch-on-write,
//!   §5.2.2) and DeNovo's 32-entry write-combining table cannot batch all the
//!   registrations (§5.2.2, "Increase in DeNovo Store Control Traffic");
//! * the source array is read exactly once per phase (streaming bypass
//!   region) and the destination array is written before being read (MESI
//!   fetch-on-write `Write` waste);
//! * the destination array becomes the input of the next phase (§5.2.1).

use crate::builder::{ArrayLayout, TraceBuilder};
use crate::workload::{BenchmarkKind, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tw_types::{BypassKind, RegionId, RegionInfo, RegionTable};

/// Configuration for the radix-sort trace generator.
#[derive(Debug, Clone)]
pub struct RadixConfig {
    /// Number of 4-byte keys.
    pub keys: usize,
    /// Radix (number of buckets; paper: 1024).
    pub radix: usize,
    /// PRNG seed for key values.
    pub seed: u64,
}

impl RadixConfig {
    /// The paper's input: 4 M keys, radix 1024.
    pub fn paper() -> Self {
        RadixConfig {
            keys: 4 * 1024 * 1024,
            radix: 1024,
            seed: 0xADD5,
        }
    }

    /// Scaled default: 256 K keys, radix 1024.
    pub fn scaled() -> Self {
        RadixConfig {
            keys: 256 * 1024,
            radix: 1024,
            seed: 0xADD5,
        }
    }

    /// Miniature input for unit tests.
    pub fn tiny() -> Self {
        RadixConfig {
            keys: 8 * 1024,
            radix: 256,
            seed: 0xADD5,
        }
    }

    /// Builds the workload for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `keys` is not divisible by `cores`.
    pub fn build(&self, cores: usize) -> Workload {
        assert!(
            cores > 0 && self.keys.is_multiple_of(cores),
            "keys must divide evenly among cores"
        );
        const KEY_BYTES: u64 = 4;
        let n = self.keys as u64;

        let src = ArrayLayout::new(0x1000_0000, KEY_BYTES, n, RegionId(1));
        let dst = ArrayLayout::new(0x2000_0000, KEY_BYTES, n, RegionId(2));
        // Per-core histograms plus the global prefix-sum array.
        let hist = ArrayLayout::new(
            0x3000_0000,
            KEY_BYTES,
            (self.radix * (cores + 1)) as u64,
            RegionId(3),
        );

        let mut regions = RegionTable::new();
        let mut rs = RegionInfo::plain(RegionId(1), "source keys", src.base, src.bytes());
        rs.bypass = BypassKind::StreamingOncePerPhase;
        regions.insert(rs);
        let mut rd = RegionInfo::plain(RegionId(2), "destination keys", dst.base, dst.bytes());
        rd.bypass = BypassKind::StreamingOncePerPhase;
        regions.insert(rd);
        regions.insert(RegionInfo::plain(
            RegionId(3),
            "histograms",
            hist.base,
            hist.bytes(),
        ));

        let per_core = n / cores as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Pre-draw the bucket of every key so that the histogram and
        // permutation phases agree.
        let buckets: Vec<u32> = (0..n)
            .map(|_| rng.gen_range(0..self.radix as u32))
            .collect();

        let mut traces = Vec::with_capacity(cores);
        for core in 0..cores as u64 {
            let mut t = TraceBuilder::new();
            let lo = core * per_core;
            let hi = lo + per_core;
            let my_hist = core * self.radix as u64;

            // Phase 0: local histogram over the core's chunk of the source.
            for k in lo..hi {
                t.load(src.elem(k), src.region);
                let b = buckets[k as usize] as u64;
                t.load(hist.elem(my_hist + b), hist.region);
                t.compute(1);
                t.store(hist.elem(my_hist + b), hist.region);
            }
            t.barrier(0);

            // Phase 1: prefix sum over the histograms. Each core sums its
            // slice of the radix across all per-core histograms.
            let radix_per_core = (self.radix / cores.min(self.radix)) as u64;
            let rlo = core * radix_per_core;
            let rhi = if core as usize == cores - 1 {
                self.radix as u64
            } else {
                rlo + radix_per_core
            };
            for b in rlo..rhi {
                for c in 0..cores as u64 {
                    t.load(hist.elem(c * self.radix as u64 + b), hist.region);
                }
                t.compute(2);
                t.store(hist.elem(cores as u64 * self.radix as u64 + b), hist.region);
            }
            t.barrier(1);

            // Phase 2: permutation — read the source chunk in order, write the
            // destination at the key's bucket cursor (scattered writes).
            let mut cursors: Vec<u64> = (0..self.radix as u64)
                .map(|b| (b * n) / self.radix as u64 + lo / self.radix as u64)
                .collect();
            for k in lo..hi {
                t.load(src.elem(k), src.region);
                let b = buckets[k as usize] as usize;
                // Read the global cursor for the bucket, then write the key.
                t.load(
                    hist.elem(cores as u64 * self.radix as u64 + b as u64),
                    hist.region,
                );
                let pos = cursors[b].min(n - 1);
                cursors[b] += 1;
                t.store(dst.elem(pos), dst.region);
                t.compute(1);
            }
            t.barrier(2);

            // Phase 3: the next pass reads the destination array (this is what
            // gives the destination its later reuse).
            for k in lo..hi {
                t.load(dst.elem(k), dst.region);
                t.compute(1);
            }
            t.barrier(3);

            traces.push(t.into_ops());
        }

        Workload {
            kind: BenchmarkKind::Radix,
            input: format!("{} keys, {} radix", self.keys, self.radix),
            regions,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{MemKind, TraceOp};

    #[test]
    fn tiny_workload_is_well_formed() {
        let wl = RadixConfig::tiny().build(16);
        wl.assert_well_formed();
        assert_eq!(wl.barriers(), 4);
        assert_eq!(wl.kind, BenchmarkKind::Radix);
    }

    #[test]
    fn permutation_writes_touch_many_distinct_lines() {
        // The scattered destination writes must span (far) more lines than an
        // L1 can hold partially-written — the source of radix's Evict waste.
        let wl = RadixConfig::tiny().build(16);
        let dst_base = 0x2000_0000u64;
        let mut lines = std::collections::HashSet::new();
        for trace in &wl.traces {
            let mut barriers = 0;
            for op in trace {
                match op {
                    TraceOp::Barrier { .. } => barriers += 1,
                    TraceOp::Mem {
                        kind: MemKind::Store,
                        addr,
                        ..
                    } if barriers == 2 && addr.byte() >= dst_base => {
                        lines.insert(addr.byte() / 64);
                    }
                    _ => {}
                }
            }
        }
        assert!(
            lines.len() > 200,
            "only {} destination lines written",
            lines.len()
        );
    }

    #[test]
    fn source_and_destination_are_streaming_bypass_regions() {
        let wl = RadixConfig::tiny().build(16);
        assert_eq!(
            wl.regions.get(RegionId(1)).unwrap().bypass,
            BypassKind::StreamingOncePerPhase
        );
        assert_eq!(
            wl.regions.get(RegionId(2)).unwrap().bypass,
            BypassKind::StreamingOncePerPhase
        );
        assert!(!wl.regions.bypasses_l2(RegionId(3)));
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let a = RadixConfig::tiny().build(4);
        let b = RadixConfig::tiny().build(4);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn paper_and_scaled_sizes() {
        assert_eq!(RadixConfig::paper().keys, 4 * 1024 * 1024);
        assert_eq!(RadixConfig::scaled().keys, 256 * 1024);
        assert_eq!(RadixConfig::scaled().radix, 1024);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_key_split_is_rejected() {
        RadixConfig {
            keys: 1000,
            radix: 16,
            seed: 0,
        }
        .build(16);
    }
}
