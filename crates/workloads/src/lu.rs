//! SPLASH-2 LU (contiguous, aligned variant).
//!
//! Blocked dense LU factorization. The paper uses the aligned version so no
//! false sharing remains; what is left for the waste analysis:
//!
//! * the diagonal and perimeter updates touch only a triangular part of each
//!   block, so part of every fetched line goes unused (§5.3, "the waste in LU
//!   is caused by accessing the upper triangular component of the blocks");
//! * blocks are read by many cores and then written by their owner, so MESI
//!   store requests are mostly `Upgrade` requests (no data response) and the
//!   Exclusive-state silent upgrade rarely applies (§5.2.2, "LU Store Control
//!   Traffic");
//! * the working set is small relative to the L2, so there is little
//!   opportunity for bypassing (§5.3).

use crate::builder::{ArrayLayout, TraceBuilder};
use crate::workload::{BenchmarkKind, Workload};
use tw_types::{RegionId, RegionInfo, RegionTable};

/// Configuration for the LU trace generator.
#[derive(Debug, Clone)]
pub struct LuConfig {
    /// Matrix dimension (paper: 512).
    pub n: usize,
    /// Block dimension (paper: 16).
    pub block: usize,
    /// Compute cycles per updated element.
    pub compute_per_elem: u32,
}

impl LuConfig {
    /// The paper's input: 512×512 matrix, 16×16 blocks.
    pub fn paper() -> Self {
        LuConfig {
            n: 512,
            block: 16,
            compute_per_elem: 4,
        }
    }

    /// Scaled default: 128×128 matrix, 16×16 blocks.
    pub fn scaled() -> Self {
        LuConfig {
            n: 128,
            block: 16,
            compute_per_elem: 4,
        }
    }

    /// Miniature input for unit tests.
    pub fn tiny() -> Self {
        LuConfig {
            n: 32,
            block: 8,
            compute_per_elem: 1,
        }
    }

    /// Builds the workload for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not an integer number of blocks.
    pub fn build(&self, cores: usize) -> Workload {
        assert!(
            self.n.is_multiple_of(self.block),
            "matrix must be a whole number of blocks"
        );
        const ELEM_BYTES: u64 = 8; // double precision
        let nb = (self.n / self.block) as u64; // blocks per dimension
        let block_elems = (self.block * self.block) as u64;
        let elems = (self.n * self.n) as u64;

        // Contiguous block layout (the "aligned" variant): block (bi, bj)
        // occupies a contiguous run of block_elems doubles.
        let a = ArrayLayout::new(0x1000_0000, ELEM_BYTES, elems, RegionId(1));
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(
            RegionId(1),
            "matrix A",
            a.base,
            a.bytes(),
        ));

        let block_base = |bi: u64, bj: u64| (bi * nb + bj) * block_elems;
        // 2-D cyclic block-to-core assignment, as in SPLASH-2.
        let owner = |bi: u64, bj: u64| ((bi % 4) * 4 + (bj % 4)) as usize % cores;

        let mut builders: Vec<TraceBuilder> = (0..cores).map(|_| TraceBuilder::new()).collect();
        let words_per_elem = (ELEM_BYTES / 4) as usize;
        let mut barrier = 0u32;

        // Emits a read-modify-write over the (possibly triangular) portion of
        // a block. `triangular` skips the lower-left half of the block, which
        // is what creates LU's irregular within-line waste.
        let touch_block =
            |t: &mut TraceBuilder, base: u64, read_only: bool, triangular: bool, compute: u32| {
                for r in 0..self.block as u64 {
                    let start_col = if triangular { r } else { 0 };
                    for c in start_col..self.block as u64 {
                        let idx = base + r * self.block as u64 + c;
                        t.load_words(a.elem(idx), words_per_elem, a.region);
                        t.compute(compute);
                        if !read_only {
                            t.store_words(a.elem(idx), words_per_elem, a.region);
                        }
                    }
                }
            };

        for k in 0..nb {
            // Step 1: factor the diagonal block (owner only, triangular access).
            let diag_owner = owner(k, k);
            touch_block(
                &mut builders[diag_owner],
                block_base(k, k),
                false,
                true,
                self.compute_per_elem,
            );
            for b in builders.iter_mut() {
                b.barrier(barrier);
            }
            barrier += 1;

            // Step 2: perimeter blocks (row k and column k) divide among owners.
            for j in (k + 1)..nb {
                let o = owner(k, j);
                // Read the diagonal block, update the perimeter block.
                touch_block(&mut builders[o], block_base(k, k), true, true, 0);
                touch_block(
                    &mut builders[o],
                    block_base(k, j),
                    false,
                    false,
                    self.compute_per_elem,
                );
            }
            for i in (k + 1)..nb {
                let o = owner(i, k);
                touch_block(&mut builders[o], block_base(k, k), true, true, 0);
                touch_block(
                    &mut builders[o],
                    block_base(i, k),
                    false,
                    false,
                    self.compute_per_elem,
                );
            }
            for b in builders.iter_mut() {
                b.barrier(barrier);
            }
            barrier += 1;

            // Step 3: interior update — each owned block reads its row and
            // column perimeter blocks and is then overwritten.
            for i in (k + 1)..nb {
                for j in (k + 1)..nb {
                    let o = owner(i, j);
                    touch_block(&mut builders[o], block_base(i, k), true, false, 0);
                    touch_block(&mut builders[o], block_base(k, j), true, false, 0);
                    touch_block(
                        &mut builders[o],
                        block_base(i, j),
                        false,
                        false,
                        self.compute_per_elem,
                    );
                }
            }
            for b in builders.iter_mut() {
                b.barrier(barrier);
            }
            barrier += 1;
        }

        Workload {
            kind: BenchmarkKind::Lu,
            input: format!(
                "{}x{} matrix, {}x{} blocks",
                self.n, self.n, self.block, self.block
            ),
            regions,
            traces: builders.into_iter().map(TraceBuilder::into_ops).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{MemKind, TraceOp};

    #[test]
    fn tiny_workload_is_well_formed() {
        let wl = LuConfig::tiny().build(16);
        wl.assert_well_formed();
        // 4 blocks per dimension -> 4 iterations x 3 barriers.
        assert_eq!(wl.barriers(), 12);
        assert_eq!(wl.kind, BenchmarkKind::Lu);
    }

    #[test]
    fn no_bypass_or_flex_annotations() {
        let wl = LuConfig::tiny().build(16);
        assert_eq!(wl.regions.len(), 1);
        let r = wl.regions.get(RegionId(1)).unwrap();
        assert!(r.comm.is_none());
        assert!(!r.bypass.bypasses_l2());
    }

    #[test]
    fn blocks_are_read_by_non_owners_before_being_written() {
        // A block written in the interior update must have been read by some
        // other core in an earlier step — the property that defeats MESI's
        // E-state silent upgrade for LU.
        let wl = LuConfig::tiny().build(16);
        let mut readers = std::collections::HashMap::<u64, std::collections::HashSet<usize>>::new();
        let mut writers = std::collections::HashMap::<u64, std::collections::HashSet<usize>>::new();
        for (core, trace) in wl.traces.iter().enumerate() {
            for op in trace {
                if let TraceOp::Mem { kind, addr, .. } = op {
                    let line = addr.byte() / 64;
                    match kind {
                        MemKind::Load => readers.entry(line).or_default().insert(core),
                        MemKind::Store => writers.entry(line).or_default().insert(core),
                    };
                }
            }
        }
        let shared_then_written = writers
            .iter()
            .filter(|(line, _)| readers.get(line).map(|r| r.len() > 1).unwrap_or(false))
            .count();
        assert!(
            shared_then_written > 10,
            "expected many lines read by several cores and written, found {shared_then_written}"
        );
    }

    #[test]
    fn triangular_access_leaves_part_of_the_block_untouched_per_phase() {
        // In the diagonal-factor phase only the upper triangle is accessed.
        let cfg = LuConfig::tiny();
        let wl = cfg.build(16);
        let first_phase_ops: usize = wl
            .traces
            .iter()
            .map(|t| {
                t.iter()
                    .take_while(|op| !matches!(op, TraceOp::Barrier { .. }))
                    .filter(|op| op.is_mem())
                    .count()
            })
            .sum();
        // Upper triangle of an 8x8 block = 36 of 64 elements, each two words,
        // loaded and stored: 144 word accesses.
        assert_eq!(first_phase_ops, 36 * 2 * 2);
    }

    #[test]
    fn scaled_matches_design_doc() {
        let cfg = LuConfig::scaled();
        assert_eq!((cfg.n, cfg.block), (128, 16));
        assert_eq!(LuConfig::paper().n, 512);
    }

    #[test]
    #[should_panic(expected = "whole number of blocks")]
    fn non_divisible_blocks_are_rejected() {
        LuConfig {
            n: 100,
            block: 16,
            compute_per_elem: 1,
        }
        .build(4);
    }
}
