//! The [`Workload`] container and benchmark identifiers.

use std::fmt;
use tw_types::{RegionTable, TraceOp};

/// The six applications evaluated in the paper (Table 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenchmarkKind {
    /// PARSEC fluidanimate (ghost-cell variant).
    Fluidanimate,
    /// SPLASH-2 LU (contiguous/aligned variant).
    Lu,
    /// SPLASH-2 FFT.
    Fft,
    /// SPLASH-2 radix sort.
    Radix,
    /// SPLASH-2 Barnes-Hut (sequential tree build, as in the paper).
    Barnes,
    /// Parallel SAH kD-tree construction.
    KdTree,
}

impl BenchmarkKind {
    /// All benchmarks in the order the paper's figures present them.
    pub const ALL: [BenchmarkKind; 6] = [
        BenchmarkKind::Fluidanimate,
        BenchmarkKind::Lu,
        BenchmarkKind::Fft,
        BenchmarkKind::Radix,
        BenchmarkKind::Barnes,
        BenchmarkKind::KdTree,
    ];

    /// Figure label.
    pub const fn name(self) -> &'static str {
        match self {
            BenchmarkKind::Fluidanimate => "fluidanimate",
            BenchmarkKind::Lu => "LU",
            BenchmarkKind::Fft => "FFT",
            BenchmarkKind::Radix => "radix",
            BenchmarkKind::Barnes => "barnes",
            BenchmarkKind::KdTree => "kD-tree",
        }
    }

    /// The input size used by the paper (Table 4.2).
    pub const fn paper_input(self) -> &'static str {
        match self {
            BenchmarkKind::Fluidanimate => "simmedium",
            BenchmarkKind::Lu => "512x512 matrix, 16x16 blocks",
            BenchmarkKind::Fft => "256K points",
            BenchmarkKind::Radix => "4 million keys, 1024 radix",
            BenchmarkKind::Barnes => "16K bodies",
            BenchmarkKind::KdTree => "bunny",
        }
    }
}

impl fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete workload: region annotations plus one trace per core.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub kind: BenchmarkKind,
    /// Human-readable description of the input size actually generated.
    pub input: String,
    /// Software-supplied region / Flex / bypass annotations.
    pub regions: RegionTable,
    /// Per-core traces (index = core id).
    pub traces: Vec<Vec<TraceOp>>,
}

impl Workload {
    /// Number of cores the workload was generated for.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Total memory operations across all cores.
    pub fn total_mem_ops(&self) -> usize {
        self.traces
            .iter()
            .map(|t| t.iter().filter(|op| op.is_mem()).count())
            .sum()
    }

    /// Number of barriers in core 0's trace (all cores must agree).
    pub fn barriers(&self) -> usize {
        self.traces
            .first()
            .map(|t| {
                t.iter()
                    .filter(|op| matches!(op, TraceOp::Barrier { .. }))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Checks the structural invariants every generator must uphold: at least
    /// one core, every core sees the same barrier sequence, and every memory
    /// access falls in a declared region.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if an invariant is violated; used by
    /// tests and debug assertions in the simulator.
    pub fn assert_well_formed(&self) {
        assert!(!self.traces.is_empty(), "workload has no cores");
        let barrier_seq = |t: &Vec<TraceOp>| {
            t.iter()
                .filter_map(|op| match op {
                    TraceOp::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let reference = barrier_seq(&self.traces[0]);
        for (i, t) in self.traces.iter().enumerate() {
            assert_eq!(
                barrier_seq(t),
                reference,
                "core {i} disagrees on the barrier sequence"
            );
        }
        for t in &self.traces {
            for op in t {
                if let TraceOp::Mem { addr, .. } = op {
                    assert!(
                        self.regions.region_of(*addr).is_some(),
                        "access to {addr} falls outside every declared region"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{Addr, RegionId, RegionInfo};

    #[test]
    fn benchmark_names_match_figures() {
        let names: Vec<_> = BenchmarkKind::ALL.iter().map(|b| b.to_string()).collect();
        assert_eq!(
            names,
            vec!["fluidanimate", "LU", "FFT", "radix", "barnes", "kD-tree"]
        );
        assert_eq!(
            BenchmarkKind::Radix.paper_input(),
            "4 million keys, 1024 radix"
        );
    }

    fn tiny_workload() -> Workload {
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
        Workload {
            kind: BenchmarkKind::Fft,
            input: "test".into(),
            regions,
            traces: vec![
                vec![
                    TraceOp::load(Addr::new(0), RegionId(1)),
                    TraceOp::barrier(0),
                ],
                vec![
                    TraceOp::store(Addr::new(64), RegionId(1)),
                    TraceOp::barrier(0),
                ],
            ],
        }
    }

    #[test]
    fn counts_and_validation() {
        let wl = tiny_workload();
        assert_eq!(wl.cores(), 2);
        assert_eq!(wl.total_mem_ops(), 2);
        assert_eq!(wl.barriers(), 1);
        wl.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "barrier sequence")]
    fn mismatched_barriers_are_detected() {
        let mut wl = tiny_workload();
        wl.traces[1].push(TraceOp::barrier(1));
        wl.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "outside every declared region")]
    fn out_of_region_access_is_detected() {
        let mut wl = tiny_workload();
        wl.traces[0].push(TraceOp::load(Addr::new(1 << 30), RegionId(1)));
        wl.assert_well_formed();
    }
}
