//! The [`Workload`] container and benchmark identifiers.

use std::fmt;
use tw_trace::{TraceDocument, TraceError};
use tw_types::{RegionTable, TraceOp};

/// The six applications evaluated in the paper (Table 4.2), plus the
/// catch-all kind for externally captured or hand-written traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BenchmarkKind {
    /// PARSEC fluidanimate (ghost-cell variant).
    Fluidanimate,
    /// SPLASH-2 LU (contiguous/aligned variant).
    Lu,
    /// SPLASH-2 FFT.
    Fft,
    /// SPLASH-2 radix sort.
    Radix,
    /// SPLASH-2 Barnes-Hut (sequential tree build, as in the paper).
    Barnes,
    /// Parallel SAH kD-tree construction.
    KdTree,
    /// A workload replayed from a trace file rather than generated — the
    /// trace-driven interface to third-party reference streams. Not part of
    /// [`BenchmarkKind::ALL`] (the paper's figures) and has no generator.
    Custom,
    /// A workload produced by the seeded random synthesizer (`tw-scenarios`),
    /// which composes sharing-pattern primitives into well-formed reference
    /// streams. Like [`BenchmarkKind::Custom`] it is not part of
    /// [`BenchmarkKind::ALL`] and has no fixed-input generator here: building
    /// one takes a seed, which lives in the synthesizer's configuration.
    Synthesized,
}

impl BenchmarkKind {
    /// All benchmarks in the order the paper's figures present them.
    pub const ALL: [BenchmarkKind; 6] = [
        BenchmarkKind::Fluidanimate,
        BenchmarkKind::Lu,
        BenchmarkKind::Fft,
        BenchmarkKind::Radix,
        BenchmarkKind::Barnes,
        BenchmarkKind::KdTree,
    ];

    /// Figure label.
    pub const fn name(self) -> &'static str {
        match self {
            BenchmarkKind::Fluidanimate => "fluidanimate",
            BenchmarkKind::Lu => "LU",
            BenchmarkKind::Fft => "FFT",
            BenchmarkKind::Radix => "radix",
            BenchmarkKind::Barnes => "barnes",
            BenchmarkKind::KdTree => "kD-tree",
            BenchmarkKind::Custom => "custom",
            BenchmarkKind::Synthesized => "synthesized",
        }
    }

    /// The input size used by the paper (Table 4.2).
    pub const fn paper_input(self) -> &'static str {
        match self {
            BenchmarkKind::Fluidanimate => "simmedium",
            BenchmarkKind::Lu => "512x512 matrix, 16x16 blocks",
            BenchmarkKind::Fft => "256K points",
            BenchmarkKind::Radix => "4 million keys, 1024 radix",
            BenchmarkKind::Barnes => "16K bodies",
            BenchmarkKind::KdTree => "bunny",
            BenchmarkKind::Custom => "external trace",
            BenchmarkKind::Synthesized => "seeded synthesis",
        }
    }

    /// Resolves a benchmark from its figure label (case-insensitive),
    /// including the trace-only kinds `custom` and `synthesized`. Unknown
    /// names are an error naming the rejected input and every accepted name —
    /// callers that want the old "anything replays" behavior (trace headers)
    /// fall back to [`BenchmarkKind::Custom`] explicitly.
    pub fn by_name(name: &str) -> Result<BenchmarkKind, String> {
        // The accepted set and the advertised set must come from the same
        // chain, so a new kind can never desynchronize them.
        let candidates = || {
            BenchmarkKind::ALL
                .into_iter()
                .chain([BenchmarkKind::Custom, BenchmarkKind::Synthesized])
        };
        candidates()
            .find(|b| b.name().eq_ignore_ascii_case(name))
            .ok_or_else(|| {
                let names: Vec<&str> = candidates().map(|b| b.name()).collect();
                format!(
                    "unknown benchmark `{name}`; expected one of: {}",
                    names.join(" ")
                )
            })
    }
}

impl fmt::Display for BenchmarkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete workload: region annotations plus one trace per core.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub kind: BenchmarkKind,
    /// Human-readable description of the input size actually generated.
    pub input: String,
    /// Software-supplied region / Flex / bypass annotations.
    pub regions: RegionTable,
    /// Per-core traces (index = core id).
    pub traces: Vec<Vec<TraceOp>>,
}

impl Workload {
    /// Number of cores the workload was generated for.
    pub fn cores(&self) -> usize {
        self.traces.len()
    }

    /// Total memory operations across all cores.
    pub fn total_mem_ops(&self) -> usize {
        self.traces
            .iter()
            .map(|t| t.iter().filter(|op| op.is_mem()).count())
            .sum()
    }

    /// Number of barriers in core 0's trace (all cores must agree).
    pub fn barriers(&self) -> usize {
        self.traces
            .first()
            .map(|t| {
                t.iter()
                    .filter(|op| matches!(op, TraceOp::Barrier { .. }))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Checks the structural invariants every workload must uphold — at
    /// least one core, every core sees the same barrier sequence, and every
    /// memory access falls in a declared region — returning a description
    /// of the first violation. Replay of externally supplied traces runs
    /// this before simulating, so a malformed trace is a diagnosable error
    /// rather than a simulator deadlock.
    pub fn try_well_formed(&self) -> Result<(), String> {
        if self.traces.is_empty() {
            return Err("workload has no cores".to_string());
        }
        let barrier_seq = |t: &Vec<TraceOp>| {
            t.iter()
                .filter_map(|op| match op {
                    TraceOp::Barrier { id } => Some(*id),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let reference = barrier_seq(&self.traces[0]);
        for (i, t) in self.traces.iter().enumerate() {
            if barrier_seq(t) != reference {
                return Err(format!("core {i} disagrees on the barrier sequence"));
            }
        }
        for t in &self.traces {
            for op in t {
                if let Some(addr) = op.addr() {
                    if self.regions.region_of(addr).is_none() {
                        return Err(format!(
                            "access to {addr} falls outside every declared region"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checks the structural invariants every generator must uphold (see
    /// [`Workload::try_well_formed`]).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if an invariant is violated; used by
    /// tests and debug assertions in the simulator.
    pub fn assert_well_formed(&self) {
        if let Err(msg) = self.try_well_formed() {
            panic!("{msg}");
        }
    }

    /// The canonical content digest of this workload: the digest of its
    /// binary trace encoding (see [`TraceDocument::digest`]). This is the
    /// identity half of a `WorkloadRef` — two workloads with the same digest
    /// have identical streams, regions and metadata, so every simulation
    /// result derived from them is interchangeable.
    pub fn content_digest(&self) -> Result<tw_types::Digest, TraceError> {
        // Stream the encoder straight into the digester instead of going
        // through `to_trace()`, which would clone every per-core stream.
        let mut sink = tw_types::DigestWriter::new();
        let mut writer = tw_trace::TraceWriter::new(
            &mut sink,
            self.kind.name(),
            &self.input,
            self.cores(),
            &self.regions,
        )?;
        for stream in &self.traces {
            for op in stream {
                writer.op(op)?;
            }
            writer.end_stream()?;
        }
        writer.finish()?;
        Ok(sink.finish())
    }

    /// Exports this workload as a persistable [`TraceDocument`].
    pub fn to_trace(&self) -> TraceDocument {
        TraceDocument {
            benchmark: self.kind.name().to_string(),
            input: self.input.clone(),
            regions: self.regions.clone(),
            streams: self.traces.clone(),
        }
    }

    /// Builds a first-class workload from a replayed trace.
    ///
    /// The benchmark name in the trace header is mapped back to its
    /// [`BenchmarkKind`] when it names a paper benchmark; anything else
    /// becomes [`BenchmarkKind::Custom`]. The workload invariants are
    /// validated, so a malformed external trace is rejected here rather
    /// than deadlocking the simulator.
    pub fn from_trace(doc: TraceDocument) -> Result<Workload, TraceError> {
        let wl = Workload {
            kind: BenchmarkKind::by_name(&doc.benchmark).unwrap_or(BenchmarkKind::Custom),
            input: doc.input,
            regions: doc.regions,
            traces: doc.streams,
        };
        wl.try_well_formed().map_err(TraceError::Malformed)?;
        Ok(wl)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::{Addr, RegionId, RegionInfo};

    #[test]
    fn benchmark_names_match_figures() {
        let names: Vec<_> = BenchmarkKind::ALL.iter().map(|b| b.to_string()).collect();
        assert_eq!(
            names,
            vec!["fluidanimate", "LU", "FFT", "radix", "barnes", "kD-tree"]
        );
        assert_eq!(
            BenchmarkKind::Radix.paper_input(),
            "4 million keys, 1024 radix"
        );
    }

    fn tiny_workload() -> Workload {
        let mut regions = RegionTable::new();
        regions.insert(RegionInfo::plain(RegionId(1), "a", Addr::new(0), 4096));
        Workload {
            kind: BenchmarkKind::Fft,
            input: "test".into(),
            regions,
            traces: vec![
                vec![
                    TraceOp::load(Addr::new(0), RegionId(1)),
                    TraceOp::barrier(0),
                ],
                vec![
                    TraceOp::store(Addr::new(64), RegionId(1)),
                    TraceOp::barrier(0),
                ],
            ],
        }
    }

    #[test]
    fn counts_and_validation() {
        let wl = tiny_workload();
        assert_eq!(wl.cores(), 2);
        assert_eq!(wl.total_mem_ops(), 2);
        assert_eq!(wl.barriers(), 1);
        wl.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "barrier sequence")]
    fn mismatched_barriers_are_detected() {
        let mut wl = tiny_workload();
        wl.traces[1].push(TraceOp::barrier(1));
        wl.assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "outside every declared region")]
    fn out_of_region_access_is_detected() {
        let mut wl = tiny_workload();
        wl.traces[0].push(TraceOp::load(Addr::new(1 << 30), RegionId(1)));
        wl.assert_well_formed();
    }

    #[test]
    fn benchmark_names_round_trip_and_unknowns_are_rejected() {
        for b in BenchmarkKind::ALL {
            assert_eq!(BenchmarkKind::by_name(b.name()), Ok(b));
            assert_eq!(BenchmarkKind::by_name(&b.name().to_uppercase()), Ok(b));
        }
        assert_eq!(BenchmarkKind::by_name("custom"), Ok(BenchmarkKind::Custom));
        assert_eq!(
            BenchmarkKind::by_name("Synthesized"),
            Ok(BenchmarkKind::Synthesized)
        );
        let err = BenchmarkKind::by_name("somebody-elses-trace").unwrap_err();
        assert!(err.contains("somebody-elses-trace"), "{err}");
        assert!(err.contains("fluidanimate"), "{err}");
        assert!(!BenchmarkKind::ALL.contains(&BenchmarkKind::Custom));
        assert!(!BenchmarkKind::ALL.contains(&BenchmarkKind::Synthesized));
    }

    #[test]
    fn content_digest_matches_the_trace_documents_digest() {
        let wl = tiny_workload();
        assert_eq!(
            wl.content_digest().unwrap(),
            wl.to_trace().digest().unwrap()
        );
        let mut other = tiny_workload();
        other.traces[0][0] = TraceOp::load(Addr::new(128), RegionId(1));
        assert_ne!(
            other.content_digest().unwrap(),
            wl.content_digest().unwrap()
        );
    }

    #[test]
    fn trace_bridge_round_trips_a_workload() {
        let wl = tiny_workload();
        let doc = wl.to_trace();
        assert_eq!(doc.benchmark, "FFT");
        assert_eq!(doc.cores(), 2);
        let back = Workload::from_trace(doc).unwrap();
        assert_eq!(back.kind, BenchmarkKind::Fft);
        assert_eq!(back.input, wl.input);
        assert_eq!(back.traces, wl.traces);
        assert_eq!(back.regions.len(), wl.regions.len());
    }

    #[test]
    fn from_trace_maps_unknown_benchmarks_to_custom() {
        let mut doc = tiny_workload().to_trace();
        doc.benchmark = "their-workload".into();
        let wl = Workload::from_trace(doc).unwrap();
        assert_eq!(wl.kind, BenchmarkKind::Custom);
        assert_eq!(wl.kind.name(), "custom");
        assert_eq!(wl.kind.paper_input(), "external trace");
    }

    #[test]
    fn from_trace_rejects_malformed_streams() {
        // Barrier mismatch between the two cores.
        let mut doc = tiny_workload().to_trace();
        doc.streams[1].push(TraceOp::barrier(9));
        let err = Workload::from_trace(doc).err().unwrap().to_string();
        assert!(err.contains("barrier sequence"), "{err}");

        // Access outside every declared region.
        let mut doc = tiny_workload().to_trace();
        doc.streams[0].push(TraceOp::load(Addr::new(1 << 40), RegionId(1)));
        let err = Workload::from_trace(doc).err().unwrap().to_string();
        assert!(err.contains("outside every declared region"), "{err}");
    }
}
