//! SPLASH-2 FFT.
//!
//! The six-step FFT alternates local butterfly phases with an all-to-all
//! matrix transpose. The traffic-relevant properties the paper leans on:
//!
//! * the butterfly phases *read and then overwrite the same addresses* of the
//!   working array — the first kind of L2-bypass region (§3.1);
//! * the transpose reads its source array exactly once per phase and writes a
//!   destination array that is overwritten before being read — under MESI's
//!   fetch-on-write policy that fetch is pure `Write` waste (§5.2.2), and the
//!   source is a read-once streaming region (the second bypass kind);
//! * the destination array is then used as the working array of the next
//!   butterfly phase (§5.2.1, "secondary benefit" discussion).

use crate::builder::{ArrayLayout, TraceBuilder};
use crate::workload::{BenchmarkKind, Workload};
use tw_types::{BypassKind, RegionId, RegionInfo, RegionTable};

/// Configuration for the FFT trace generator.
#[derive(Debug, Clone)]
pub struct FftConfig {
    /// Number of complex points (each 16 bytes: two doubles).
    pub points: usize,
    /// Compute cycles modelled per butterfly update.
    pub compute_per_point: u32,
}

impl FftConfig {
    /// The paper's input: 256 K points.
    pub fn paper() -> Self {
        FftConfig {
            points: 256 * 1024,
            compute_per_point: 8,
        }
    }

    /// Scaled default input (see DESIGN.md §7): 32 K points.
    pub fn scaled() -> Self {
        FftConfig {
            points: 32 * 1024,
            compute_per_point: 8,
        }
    }

    /// Miniature input for unit tests.
    pub fn tiny() -> Self {
        FftConfig {
            points: 1024,
            compute_per_point: 2,
        }
    }

    /// Builds the workload for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `points` is not divisible by `cores`.
    pub fn build(&self, cores: usize) -> Workload {
        assert!(
            cores > 0 && self.points.is_multiple_of(cores),
            "points must divide evenly among cores"
        );
        const POINT_BYTES: u64 = 16;
        let n = self.points as u64;

        let x = ArrayLayout::new(0x1000_0000, POINT_BYTES, n, RegionId(1));
        let trans = ArrayLayout::new(0x2000_0000, POINT_BYTES, n, RegionId(2));
        let roots = ArrayLayout::new(0x3000_0000, POINT_BYTES, 1024.min(n), RegionId(3));

        let mut regions = RegionTable::new();
        let mut rx = RegionInfo::plain(RegionId(1), "x (working array)", x.base, x.bytes());
        // Butterfly phases read then overwrite x in place.
        rx.bypass = BypassKind::ReadThenOverwritten;
        regions.insert(rx);
        let mut rt = RegionInfo::plain(
            RegionId(2),
            "trans (transpose dest)",
            trans.base,
            trans.bytes(),
        );
        rt.bypass = BypassKind::ReadThenOverwritten;
        regions.insert(rt);
        let mut rr = RegionInfo::plain(RegionId(3), "roots of unity", roots.base, roots.bytes());
        rr.written_in_parallel_phases = false;
        regions.insert(rr);

        let per_core = n / cores as u64;
        let words_per_point = x.words_per_elem();
        let mut traces = Vec::with_capacity(cores);
        // The transpose treats the data as a sqrt(n) x sqrt(n) matrix of
        // points; each core transposes a band of rows into a band of columns.
        let dim = (n as f64).sqrt() as u64;

        for core in 0..cores as u64 {
            let mut t = TraceBuilder::new();
            let lo = core * per_core;
            let hi = lo + per_core;

            // Phase 0: butterfly over the core's chunk of x (read-modify-write).
            for p in lo..hi {
                t.load_words(x.elem(p), words_per_point, x.region);
                // A handful of root coefficients are re-read constantly.
                t.load_words(roots.elem(p % roots.elems), 2, roots.region);
                t.compute(self.compute_per_point);
                t.store_words(x.elem(p), words_per_point, x.region);
            }
            t.barrier(0);

            // Phase 1: transpose x -> trans. Reads of x walk down columns
            // (stride = dim points), writes of trans are sequential: the
            // destination is written without being read first.
            for p in lo..hi {
                let row = p / dim;
                let col = p % dim;
                let src = col * dim + row; // column-order read of x
                if src < n {
                    t.load_words(x.elem(src), words_per_point, x.region);
                }
                t.compute(1);
                t.store_words(trans.elem(p), words_per_point, trans.region);
            }
            t.barrier(1);

            // Phase 2: butterfly over the core's chunk of trans.
            for p in lo..hi {
                t.load_words(trans.elem(p), words_per_point, trans.region);
                t.load_words(roots.elem(p % roots.elems), 2, roots.region);
                t.compute(self.compute_per_point);
                t.store_words(trans.elem(p), words_per_point, trans.region);
            }
            t.barrier(2);

            traces.push(t.into_ops());
        }

        Workload {
            kind: BenchmarkKind::Fft,
            input: format!("{} points", self.points),
            regions,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tw_types::TraceOp;

    #[test]
    fn tiny_workload_is_well_formed() {
        let wl = FftConfig::tiny().build(16);
        wl.assert_well_formed();
        assert_eq!(wl.cores(), 16);
        assert_eq!(wl.barriers(), 3);
        assert_eq!(wl.kind, BenchmarkKind::Fft);
    }

    #[test]
    fn transpose_destination_is_written_before_read() {
        let wl = FftConfig::tiny().build(4);
        // In phase 1 the first touch of any trans element must be a store.
        let trans_base = 0x2000_0000u64;
        for trace in &wl.traces {
            let mut seen_store = std::collections::HashSet::new();
            let mut barrier_count = 0;
            for op in trace {
                match op {
                    TraceOp::Barrier { .. } => barrier_count += 1,
                    TraceOp::Mem { kind, addr, .. }
                        if barrier_count == 1
                            && addr.byte() >= trans_base
                            && addr.byte() < trans_base + (1 << 20) =>
                    {
                        match kind {
                            tw_types::MemKind::Store => {
                                seen_store.insert(addr.byte());
                            }
                            tw_types::MemKind::Load => {
                                panic!("trans read during the transpose phase");
                            }
                        }
                    }
                    _ => {}
                }
            }
            assert!(!seen_store.is_empty());
        }
    }

    #[test]
    fn working_array_is_marked_read_then_overwritten() {
        let wl = FftConfig::tiny().build(16);
        assert_eq!(
            wl.regions.get(RegionId(1)).unwrap().bypass,
            BypassKind::ReadThenOverwritten
        );
        assert!(wl.regions.bypasses_l2(RegionId(2)));
        assert!(!wl.regions.bypasses_l2(RegionId(3)));
    }

    #[test]
    fn every_access_is_inside_a_region() {
        FftConfig::tiny().build(16).assert_well_formed();
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_core_split_is_rejected() {
        FftConfig {
            points: 1000,
            compute_per_point: 1,
        }
        .build(16);
    }

    #[test]
    fn paper_and_scaled_sizes() {
        assert_eq!(FftConfig::paper().points, 262_144);
        assert_eq!(FftConfig::scaled().points, 32_768);
        let all_loads_stores = FftConfig::tiny().build(16).total_mem_ops();
        assert!(all_loads_stores > 10_000);
    }

    #[test]
    fn roots_region_is_read_only_in_parallel_phases() {
        let wl = FftConfig::tiny().build(16);
        assert!(
            !wl.regions
                .get(RegionId(3))
                .unwrap()
                .written_in_parallel_phases
        );
    }
}
