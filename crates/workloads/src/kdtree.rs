//! Parallel SAH kD-tree construction.
//!
//! The builder maintains two large arrays (paper §5.2.1): a *triangle* array
//! holding the scene mesh, accessed randomly, and an *edge* array holding the
//! axis-aligned bounding-box edge events, accessed in streaming order every
//! level. Properties the paper relies on:
//!
//! * both structs mix fields that the construction phase needs with fields it
//!   does not, so Flex trims the responses (§5.2.1);
//! * the edge array is much larger than the L2 and is read once per level —
//!   the second kind of bypass region; bypassing it also leaves L2 room for
//!   the randomly accessed triangle array (§5.2.1, "secondary benefit");
//! * the edge communication region spans more than one packet's worth of
//!   data, which is what produces `Excess` waste at the memory controller
//!   when Flex is extended to memory (§5.3, "Memory Fetch Waste").

use crate::builder::{ArrayLayout, TraceBuilder};
use crate::workload::{BenchmarkKind, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tw_types::{BypassKind, CommRegion, RegionId, RegionInfo, RegionTable, WORD_BYTES};

/// Bytes per triangle record (vertices + id + flags).
pub const TRIANGLE_BYTES: u64 = 48;
/// Bytes per per-triangle edge-event record (six edges of 16 bytes).
pub const EDGE_BYTES: u64 = 96;

/// Configuration for the kD-tree trace generator.
#[derive(Debug, Clone)]
pub struct KdTreeConfig {
    /// Number of triangles in the mesh.
    pub triangles: usize,
    /// Tree levels built (the paper measures three iterations).
    pub levels: usize,
    /// Fraction (per mille) of triangles re-examined randomly per level.
    pub random_touch_per_mille: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl KdTreeConfig {
    /// The paper's input: the Stanford bunny (~69 K triangles).
    pub fn paper() -> Self {
        KdTreeConfig {
            triangles: 69 * 1024,
            levels: 3,
            random_touch_per_mille: 250,
            seed: 0x5EED,
        }
    }

    /// Scaled default: 16 K triangles, 3 levels.
    pub fn scaled() -> Self {
        KdTreeConfig {
            triangles: 16 * 1024,
            levels: 3,
            random_touch_per_mille: 250,
            seed: 0x5EED,
        }
    }

    /// Miniature input for unit tests.
    pub fn tiny() -> Self {
        KdTreeConfig {
            triangles: 1024,
            levels: 2,
            random_touch_per_mille: 250,
            seed: 0x5EED,
        }
    }

    /// Builds the workload for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `triangles` is not divisible by `cores`.
    pub fn build(&self, cores: usize) -> Workload {
        assert!(
            cores > 0 && self.triangles.is_multiple_of(cores),
            "triangles must divide evenly among cores"
        );
        let n = self.triangles as u64;

        let triangles = ArrayLayout::new(0x1000_0000, TRIANGLE_BYTES, n, RegionId(1));
        let edges = ArrayLayout::new(0x2000_0000, EDGE_BYTES, n, RegionId(2));
        // Split decisions / node records and the triangle classification array.
        let nodes = ArrayLayout::new(0x3000_0000, 64, 4 * n.max(64), RegionId(3));

        // Triangle: three vertex indices + bbox min (12 B) + bbox max (12 B) +
        // id/flags. The construction phase needs the bbox and id: 7 words.
        let tri_comm = CommRegion {
            object_bytes: TRIANGLE_BYTES,
            useful_offsets: (0..7).map(|w| w * WORD_BYTES).collect(),
        };
        // Edge record: six (value, index, flags, pad) events of 16 bytes; the
        // sweep needs value+index of each: 12 useful words spread over 96 B,
        // i.e. more than one 64-byte packet's worth of span.
        let edge_comm = CommRegion {
            object_bytes: EDGE_BYTES,
            useful_offsets: (0..6).flat_map(|e| [e * 16, e * 16 + 4]).collect(),
        };

        let mut regions = RegionTable::new();
        let mut rt = RegionInfo::plain(RegionId(1), "triangles", triangles.base, triangles.bytes());
        rt.comm = Some(tri_comm);
        regions.insert(rt);
        let mut re = RegionInfo::plain(RegionId(2), "edge events", edges.base, edges.bytes());
        re.comm = Some(edge_comm);
        re.bypass = BypassKind::StreamingOncePerPhase;
        regions.insert(re);
        regions.insert(RegionInfo::plain(
            RegionId(3),
            "nodes & classification",
            nodes.base,
            nodes.bytes(),
        ));

        let per_core = n / cores as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut traces = Vec::with_capacity(cores);

        for core in 0..cores as u64 {
            let mut t = TraceBuilder::new();
            let lo = core * per_core;
            let hi = lo + per_core;

            for level in 0..self.levels as u32 {
                // Sweep the core's slice of the edge array in streaming order,
                // reading the useful fields of each event.
                for e in lo..hi {
                    for ev in 0..6u64 {
                        t.load(edges.field(e, ev * 16), edges.region); // value
                        t.load(edges.field(e, ev * 16 + 4), edges.region); // index
                    }
                    t.compute(3);
                }
                // Randomly re-examine a subset of triangles (SAH evaluation /
                // classification against the chosen split plane).
                let touches = per_core * self.random_touch_per_mille as u64 / 1000;
                for _ in 0..touches {
                    let tri = rng.gen_range(0..n);
                    t.load_words(triangles.field(tri, 0), 7, triangles.region);
                    t.compute(2);
                    // Write the triangle's classification for this level.
                    let slot = (tri * self.levels as u64 + level as u64) % nodes.elems;
                    t.store(nodes.elem(slot), nodes.region);
                }
                // Emit the node record for the split this core contributed to.
                t.store_words(
                    nodes.elem((core + level as u64 * cores as u64) % nodes.elems),
                    8,
                    nodes.region,
                );
                t.barrier(level);
            }

            traces.push(t.into_ops());
        }

        Workload {
            kind: BenchmarkKind::KdTree,
            input: format!("{} triangles, {} levels", self.triangles, self.levels),
            regions,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_is_well_formed() {
        let wl = KdTreeConfig::tiny().build(16);
        wl.assert_well_formed();
        assert_eq!(wl.barriers(), 2);
        assert_eq!(wl.kind, BenchmarkKind::KdTree);
    }

    #[test]
    fn edge_comm_region_spans_more_than_one_packet() {
        // 12 useful words spread over 96 bytes: the span exceeds the 64-byte
        // packet payload, which is what produces Excess waste under L2 Flex.
        let wl = KdTreeConfig::tiny().build(16);
        let (_, comm) = wl.regions.comm_region(RegionId(2)).unwrap();
        assert_eq!(comm.useful_words(), 12);
        assert!(comm.object_bytes > 64);
        let span =
            comm.useful_offsets.iter().max().unwrap() - comm.useful_offsets.iter().min().unwrap();
        assert!(span > 64);
    }

    #[test]
    fn edges_are_streamed_and_bypassed_triangles_are_not() {
        let wl = KdTreeConfig::tiny().build(16);
        assert!(wl.regions.bypasses_l2(RegionId(2)));
        assert!(!wl.regions.bypasses_l2(RegionId(1)));
        assert!(wl.regions.comm_region(RegionId(1)).is_some());
    }

    #[test]
    fn edge_sweep_is_streaming_in_order() {
        let wl = KdTreeConfig::tiny().build(4);
        // Within the first level, the addresses of edge loads must be
        // non-decreasing for each core (streaming order).
        for trace in &wl.traces {
            let mut last = 0u64;
            for op in trace {
                match op {
                    tw_types::TraceOp::Barrier { .. } => break,
                    tw_types::TraceOp::Mem { addr, .. }
                        if (0x2000_0000..0x3000_0000).contains(&addr.byte()) =>
                    {
                        assert!(addr.byte() >= last, "edge sweep went backwards");
                        last = addr.byte();
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = KdTreeConfig::tiny().build(4);
        let b = KdTreeConfig::tiny().build(4);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn paper_and_scaled_sizes() {
        assert_eq!(KdTreeConfig::paper().triangles, 69 * 1024);
        assert_eq!(KdTreeConfig::scaled().triangles, 16 * 1024);
        assert_eq!(KdTreeConfig::scaled().levels, 3);
    }
}
