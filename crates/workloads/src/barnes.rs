//! SPLASH-2 Barnes-Hut N-body simulation.
//!
//! The paper sequentializes the oct-tree build (DeNovo has no mutex support)
//! and measures one iteration. The traffic-relevant structure:
//!
//! * body and tree-cell structs carry many fields that are used only during
//!   tree construction plus compiler padding, and the structs are not padded
//!   to a multiple of the line size — so the force-computation phase drags in
//!   useless words unless Flex sends only the communicated fields (§5.2.1);
//! * the force phase traverses the tree irregularly (random-looking cell
//!   visits), which is why some Fetch/Evict waste remains even under the
//!   fully optimized protocol (§5.3);
//! * the working set is small relative to the L2, so bypassing does not
//!   apply (§5.3).

use crate::builder::{ArrayLayout, TraceBuilder};
use crate::workload::{BenchmarkKind, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tw_types::{CommRegion, RegionId, RegionInfo, RegionTable, WORD_BYTES};

/// Size of one body record in bytes (deliberately not a multiple of 64).
pub const BODY_BYTES: u64 = 120;
/// Size of one tree-cell record in bytes.
pub const CELL_BYTES: u64 = 200;

/// Configuration for the Barnes-Hut trace generator.
#[derive(Debug, Clone)]
pub struct BarnesConfig {
    /// Number of bodies.
    pub bodies: usize,
    /// Tree cells visited per body during force computation.
    pub cells_per_body: usize,
    /// Direct body–body interactions sampled per body.
    pub leaf_interactions: usize,
    /// PRNG seed for the traversal pattern.
    pub seed: u64,
}

impl BarnesConfig {
    /// The paper's input: 16 K bodies.
    pub fn paper() -> Self {
        BarnesConfig {
            bodies: 16 * 1024,
            cells_per_body: 24,
            leaf_interactions: 4,
            seed: 0xBA51,
        }
    }

    /// Scaled default: 2 K bodies.
    pub fn scaled() -> Self {
        BarnesConfig {
            bodies: 2 * 1024,
            cells_per_body: 20,
            leaf_interactions: 4,
            seed: 0xBA51,
        }
    }

    /// Miniature input for unit tests.
    pub fn tiny() -> Self {
        BarnesConfig {
            bodies: 256,
            cells_per_body: 6,
            leaf_interactions: 2,
            seed: 0xBA51,
        }
    }

    /// Builds the workload for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `bodies` is not divisible by `cores`.
    pub fn build(&self, cores: usize) -> Workload {
        assert!(
            cores > 0 && self.bodies.is_multiple_of(cores),
            "bodies must divide evenly among cores"
        );
        let nbody = self.bodies as u64;
        let ncell = (nbody / 2).max(1);

        let bodies = ArrayLayout::new(0x1000_0000, BODY_BYTES, nbody, RegionId(1));
        let cells = ArrayLayout::new(0x2000_0000, CELL_BYTES, ncell, RegionId(2));

        // Body layout (byte offsets): pos 0..24, mass 24..32, vel 32..56,
        // acc 56..80, tree-build bookkeeping and padding 80..120.
        let body_comm = CommRegion {
            object_bytes: BODY_BYTES,
            useful_offsets: (0..8).map(|w| w * WORD_BYTES).collect(), // pos + mass
        };
        // Cell layout: center-of-mass pos 0..24, mass 24..32, child pointers
        // 32..48 used during traversal, remaining pointers and build-only
        // fields 48..200. The force phase reads the first 48 bytes (12
        // words); Flex supplies exactly those.
        let cell_comm = CommRegion {
            object_bytes: CELL_BYTES,
            useful_offsets: (0..12).map(|w| w * WORD_BYTES).collect(),
        };

        let mut regions = RegionTable::new();
        let mut rb = RegionInfo::plain(RegionId(1), "bodies", bodies.base, bodies.bytes());
        rb.comm = Some(body_comm);
        regions.insert(rb);
        let mut rc = RegionInfo::plain(RegionId(2), "tree cells", cells.base, cells.bytes());
        rc.comm = Some(cell_comm);
        regions.insert(rc);

        let per_core = nbody / cores as u64;
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Pre-draw every core's traversal so that trace generation is cheap
        // and deterministic.
        let mut traces = Vec::with_capacity(cores);
        for core in 0..cores as u64 {
            let mut t = TraceBuilder::new();
            let lo = core * per_core;
            let hi = lo + per_core;

            // Phase 0: sequential tree build on core 0 (paper §4.3).
            if core == 0 {
                for b in 0..nbody {
                    // Read the body position, walk a few cells, update one.
                    t.load_words(bodies.field(b, 0), 6, bodies.region);
                    let depth = 3 + (b % 3) as usize;
                    for _ in 0..depth {
                        let c = rng.gen_range(0..ncell);
                        // Read the child-pointer block of the cell.
                        t.load_words(cells.field(c, 32), 4, cells.region);
                    }
                    let c = rng.gen_range(0..ncell);
                    t.store_words(cells.field(c, 0), 8, cells.region);
                    t.compute(4);
                }
                // Center-of-mass pass over the cells.
                for c in 0..ncell {
                    t.load_words(cells.field(c, 0), 8, cells.region);
                    t.compute(2);
                    t.store_words(cells.field(c, 0), 8, cells.region);
                }
            }
            t.barrier(0);

            // Phase 1: force computation over the core's bodies.
            for b in lo..hi {
                t.load_words(bodies.field(b, 0), 8, bodies.region); // pos + mass
                for _ in 0..self.cells_per_body {
                    let c = rng.gen_range(0..ncell);
                    t.load_words(cells.field(c, 0), 8, cells.region); // COM + mass
                    t.load_words(cells.field(c, 32), 4, cells.region); // children
                    t.compute(3);
                }
                for _ in 0..self.leaf_interactions {
                    let other = rng.gen_range(0..nbody);
                    t.load_words(bodies.field(other, 0), 8, bodies.region);
                    t.compute(3);
                }
                t.store_words(bodies.field(b, 56), 6, bodies.region); // acc
            }
            t.barrier(1);

            // Phase 2: position/velocity update.
            for b in lo..hi {
                t.load_words(bodies.field(b, 32), 6, bodies.region); // vel
                t.load_words(bodies.field(b, 56), 6, bodies.region); // acc
                t.compute(4);
                t.store_words(bodies.field(b, 0), 6, bodies.region); // pos
                t.store_words(bodies.field(b, 32), 6, bodies.region); // vel
            }
            t.barrier(2);

            traces.push(t.into_ops());
        }

        Workload {
            kind: BenchmarkKind::Barnes,
            input: format!("{} bodies", self.bodies),
            regions,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_is_well_formed() {
        let wl = BarnesConfig::tiny().build(16);
        wl.assert_well_formed();
        assert_eq!(wl.barriers(), 3);
        assert_eq!(wl.kind, BenchmarkKind::Barnes);
    }

    #[test]
    fn structs_are_not_line_multiples() {
        assert_ne!(BODY_BYTES % 64, 0, "body structs must straddle lines");
        assert_ne!(CELL_BYTES % 64, 0);
    }

    #[test]
    fn flex_communication_regions_are_smaller_than_objects() {
        let wl = BarnesConfig::tiny().build(16);
        let (info, comm) = wl.regions.comm_region(RegionId(1)).unwrap();
        assert_eq!(info.name, "bodies");
        assert!(comm.useful_words() * 4 < BODY_BYTES as usize);
        let (_, cell_comm) = wl.regions.comm_region(RegionId(2)).unwrap();
        assert!(cell_comm.useful_words() * 4 < CELL_BYTES as usize);
    }

    #[test]
    fn no_bypass_regions() {
        let wl = BarnesConfig::tiny().build(16);
        assert!(!wl.regions.bypasses_l2(RegionId(1)));
        assert!(!wl.regions.bypasses_l2(RegionId(2)));
    }

    #[test]
    fn tree_build_happens_only_on_core_zero() {
        let wl = BarnesConfig::tiny().build(8);
        let ops_before_first_barrier = |core: usize| {
            wl.traces[core]
                .iter()
                .take_while(|op| !matches!(op, tw_types::TraceOp::Barrier { .. }))
                .filter(|op| op.is_mem())
                .count()
        };
        assert!(ops_before_first_barrier(0) > 1000);
        for core in 1..8 {
            assert_eq!(
                ops_before_first_barrier(core),
                0,
                "core {core} should idle during build"
            );
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = BarnesConfig::tiny().build(4);
        let b = BarnesConfig::tiny().build(4);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn paper_and_scaled_sizes() {
        assert_eq!(BarnesConfig::paper().bodies, 16 * 1024);
        assert_eq!(BarnesConfig::scaled().bodies, 2 * 1024);
    }
}
