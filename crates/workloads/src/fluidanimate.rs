//! PARSEC fluidanimate (ghost-cell variant, as modified for the paper).
//!
//! Smoothed-particle hydrodynamics over a uniform grid of cells, each of
//! which statically reserves space for 16 particles. The properties the paper
//! builds on:
//!
//! * most cells hold far fewer than 16 particles, so the tail of every cell's
//!   preallocated storage is fetched but never used under line-granularity
//!   transfer (`Evict` waste, §5.2.2 and §5.3);
//! * the grid-rebuild phase is an array-to-array copy that overwrites the
//!   destination, and density/force accumulators are zeroed — `Write` waste
//!   under fetch-on-write (§5.2.2);
//! * density/force accumulators are *read then overwritten* by the same core,
//!   the first kind of bypass region (§3.1, §5.2.1);
//! * the stencil walks the grid in X-Y-Z order without blocking, giving the
//!   grid highly variable L2 reuse distance (§5.3).

use crate::builder::{ArrayLayout, TraceBuilder};
use crate::workload::{BenchmarkKind, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tw_types::{BypassKind, RegionId, RegionInfo, RegionTable};

/// Bytes reserved per particle slot (position, velocity, density, force).
pub const SLOT_BYTES: u64 = 40;
/// Particle slots statically reserved per cell.
pub const SLOTS_PER_CELL: u64 = 16;
/// Bytes per cell (16 slots plus a count word, padded).
pub const CELL_BYTES: u64 = SLOT_BYTES * SLOTS_PER_CELL + 64;

/// Configuration for the fluidanimate trace generator.
#[derive(Debug, Clone)]
pub struct FluidanimateConfig {
    /// Grid dimension (cells per axis).
    pub grid: usize,
    /// Mean number of occupied particle slots per cell (of 16).
    pub mean_particles: usize,
    /// Number of frames to simulate.
    pub frames: usize,
    /// PRNG seed for cell occupancy.
    pub seed: u64,
}

impl FluidanimateConfig {
    /// The paper's input (simmedium): roughly a 30×34×30 grid.
    pub fn paper() -> Self {
        FluidanimateConfig {
            grid: 30,
            mean_particles: 6,
            frames: 1,
            seed: 0xF1D0,
        }
    }

    /// Scaled default: 10×10×10 grid, one frame.
    pub fn scaled() -> Self {
        FluidanimateConfig {
            grid: 10,
            mean_particles: 6,
            frames: 1,
            seed: 0xF1D0,
        }
    }

    /// Miniature input for unit tests.
    pub fn tiny() -> Self {
        FluidanimateConfig {
            grid: 4,
            mean_particles: 4,
            frames: 1,
            seed: 0xF1D0,
        }
    }

    /// Builds the workload for `cores` cores.
    pub fn build(&self, cores: usize) -> Workload {
        assert!(cores > 0);
        let g = self.grid as u64;
        let ncell = g * g * g;

        // Double-buffered grids: `cells` is the working grid (accumulators),
        // `cells2` holds last frame's particles and is read once per rebuild.
        let cells = ArrayLayout::new(0x1000_0000, CELL_BYTES, ncell, RegionId(1));
        let cells2 = ArrayLayout::new(0x4000_0000, CELL_BYTES, ncell, RegionId(2));

        let mut regions = RegionTable::new();
        let mut r1 = RegionInfo::plain(
            RegionId(1),
            "grid cells (accumulators)",
            cells.base,
            cells.bytes(),
        );
        r1.bypass = BypassKind::ReadThenOverwritten;
        regions.insert(r1);
        let mut r2 = RegionInfo::plain(
            RegionId(2),
            "previous-frame cells",
            cells2.base,
            cells2.bytes(),
        );
        r2.bypass = BypassKind::StreamingOncePerPhase;
        regions.insert(r2);

        let mut rng = StdRng::seed_from_u64(self.seed);
        // Occupancy of each cell: 1..=min(2*mean, 16) particles.
        let occupancy: Vec<u64> = (0..ncell)
            .map(|_| rng.gen_range(1..=(2 * self.mean_particles as u64).min(SLOTS_PER_CELL)))
            .collect();

        // Cells are partitioned among cores by contiguous index range, which
        // corresponds to slabs along the Z axis (X-Y-Z traversal order).
        let cell_of = |x: u64, y: u64, z: u64| (z * g + y) * g + x;
        let owner = |cell: u64| ((cell * cores as u64) / ncell) as usize;
        // Byte offset of a field of one particle slot within a cell.
        let slot_field = |slot: u64, field_word: u64| slot * SLOT_BYTES + field_word * 4;

        let mut builders: Vec<TraceBuilder> = (0..cores).map(|_| TraceBuilder::new()).collect();
        let mut barrier = 0u32;

        for _frame in 0..self.frames {
            // Phase 0: rebuild the grid — copy particles from cells2 into
            // cells (overwriting) and clear the accumulators.
            for c in 0..ncell {
                let t = &mut builders[owner(c)];
                for s in 0..occupancy[c as usize] {
                    t.load_words(cells2.field(c, slot_field(s, 0)), 6, cells2.region); // pos+vel
                    t.store_words(cells.field(c, slot_field(s, 0)), 6, cells.region);
                }
                // Zero the density and force accumulators of every slot that
                // will be used this frame.
                for s in 0..occupancy[c as usize] {
                    t.store(cells.field(c, slot_field(s, 6)), cells.region); // density
                    t.store_words(cells.field(c, slot_field(s, 7)), 3, cells.region);
                    // force
                }
                t.compute(2);
            }
            for b in builders.iter_mut() {
                b.barrier(barrier);
            }
            barrier += 1;

            // Phases 1 and 2: density then force computation, each a 7-point
            // stencil over neighbouring cells with read-modify-write of the
            // cell's own accumulators.
            for (accum_word, accum_len) in [(6u64, 1usize), (7, 3)] {
                for z in 0..g {
                    for y in 0..g {
                        for x in 0..g {
                            let c = cell_of(x, y, z);
                            let t = &mut builders[owner(c)];
                            let own = occupancy[c as usize];
                            // Read own particle positions.
                            for s in 0..own {
                                t.load_words(cells.field(c, slot_field(s, 0)), 3, cells.region);
                            }
                            // Read a sample of particles from each face neighbour.
                            let neighbours = [
                                (x.wrapping_sub(1), y, z),
                                (x + 1, y, z),
                                (x, y.wrapping_sub(1), z),
                                (x, y + 1, z),
                                (x, y, z.wrapping_sub(1)),
                                (x, y, z + 1),
                            ];
                            for (nx, ny, nz) in neighbours {
                                if nx < g && ny < g && nz < g {
                                    let nc = cell_of(nx, ny, nz);
                                    let sample = occupancy[nc as usize].min(2);
                                    for s in 0..sample {
                                        t.load_words(
                                            cells.field(nc, slot_field(s, 0)),
                                            3,
                                            cells.region,
                                        );
                                    }
                                }
                            }
                            // Read-modify-write the accumulators of own particles.
                            for s in 0..own {
                                t.load_words(
                                    cells.field(c, slot_field(s, accum_word)),
                                    accum_len,
                                    cells.region,
                                );
                                t.compute(4);
                                t.store_words(
                                    cells.field(c, slot_field(s, accum_word)),
                                    accum_len,
                                    cells.region,
                                );
                            }
                        }
                    }
                }
                for b in builders.iter_mut() {
                    b.barrier(barrier);
                }
                barrier += 1;
            }

            // Phase 3: advance particles — read force, update pos/vel in cells2
            // (which becomes next frame's source).
            for c in 0..ncell {
                let t = &mut builders[owner(c)];
                for s in 0..occupancy[c as usize] {
                    t.load_words(cells.field(c, slot_field(s, 0)), 6, cells.region);
                    t.load_words(cells.field(c, slot_field(s, 7)), 3, cells.region);
                    t.compute(4);
                    t.store_words(cells2.field(c, slot_field(s, 0)), 6, cells2.region);
                }
            }
            for b in builders.iter_mut() {
                b.barrier(barrier);
            }
            barrier += 1;
        }

        Workload {
            kind: BenchmarkKind::Fluidanimate,
            input: format!(
                "{0}x{0}x{0} grid, ~{1} particles/cell, {2} frame(s)",
                self.grid, self.mean_particles, self.frames
            ),
            regions,
            traces: builders.into_iter().map(TraceBuilder::into_ops).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_workload_is_well_formed() {
        let wl = FluidanimateConfig::tiny().build(16);
        wl.assert_well_formed();
        assert_eq!(wl.barriers(), 4); // rebuild, density, force, advance
        assert_eq!(wl.kind, BenchmarkKind::Fluidanimate);
    }

    #[test]
    fn cells_reserve_sixteen_slots_but_use_fewer() {
        // The generator must never touch more slots than the occupancy it drew,
        // which is capped well below 16 for the default mean.
        let cfg = FluidanimateConfig::tiny();
        assert!(2 * cfg.mean_particles < SLOTS_PER_CELL as usize);
        assert_eq!(CELL_BYTES, 704);
    }

    #[test]
    fn accumulator_region_is_read_then_overwritten_bypass() {
        let wl = FluidanimateConfig::tiny().build(16);
        assert_eq!(
            wl.regions.get(RegionId(1)).unwrap().bypass,
            BypassKind::ReadThenOverwritten
        );
        assert_eq!(
            wl.regions.get(RegionId(2)).unwrap().bypass,
            BypassKind::StreamingOncePerPhase
        );
    }

    #[test]
    fn multiple_frames_multiply_barriers() {
        let wl = FluidanimateConfig {
            frames: 2,
            ..FluidanimateConfig::tiny()
        }
        .build(8);
        assert_eq!(wl.barriers(), 8);
        wl.assert_well_formed();
    }

    #[test]
    fn neighbouring_slabs_share_boundary_cells() {
        // Cells owned by one core are read by the neighbouring core's stencil,
        // which is what creates the communication fluidanimate needs.
        let wl = FluidanimateConfig::tiny().build(4);
        let mut writers = std::collections::HashMap::<u64, usize>::new();
        let mut cross_reads = 0usize;
        for (core, trace) in wl.traces.iter().enumerate() {
            for op in trace {
                if let tw_types::TraceOp::Mem {
                    kind: tw_types::MemKind::Store,
                    addr,
                    ..
                } = op
                {
                    writers.entry(addr.byte() / CELL_BYTES).or_insert(core);
                }
            }
        }
        for (core, trace) in wl.traces.iter().enumerate() {
            for op in trace {
                if let tw_types::TraceOp::Mem {
                    kind: tw_types::MemKind::Load,
                    addr,
                    ..
                } = op
                {
                    if let Some(&w) = writers.get(&(addr.byte() / CELL_BYTES)) {
                        if w != core {
                            cross_reads += 1;
                        }
                    }
                }
            }
        }
        assert!(
            cross_reads > 10,
            "expected cross-core stencil reads, got {cross_reads}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = FluidanimateConfig::tiny().build(4);
        let b = FluidanimateConfig::tiny().build(4);
        assert_eq!(a.traces, b.traces);
    }
}
