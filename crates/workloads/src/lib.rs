//! Synthetic workload generators for the six benchmarks of the study.
//!
//! The paper drives its simulator with SPLASH-2 (FFT, LU, radix, Barnes-Hut),
//! PARSEC (fluidanimate) and a parallel kD-tree builder running under a
//! full-system simulator. This crate substitutes trace generators that
//! reproduce each application's data-structure layout, sharing pattern, phase
//! structure and region annotations — the properties the paper's analysis
//! attributes every traffic-waste effect to (see `DESIGN.md` §1 for the
//! substitution rationale and §7 for the scaled default input sizes).
//!
//! Each generator produces a [`Workload`]: a [`tw_types::RegionTable`]
//! describing the software-supplied region, Flex and bypass annotations, and
//! one [`tw_types::TraceOp`] stream per core.
//!
//! # Example
//!
//! ```
//! use tw_workloads::{fft::FftConfig, Workload};
//!
//! let wl: Workload = FftConfig::scaled().build(16);
//! assert_eq!(wl.cores(), 16);
//! assert!(wl.total_mem_ops() > 10_000);
//! assert!(wl.regions.len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes;
pub mod builder;
pub mod fft;
pub mod fluidanimate;
pub mod kdtree;
pub mod lu;
pub mod radix;
pub mod workload;

pub use builder::TraceBuilder;
pub use workload::{BenchmarkKind, Workload};

/// Builds the default (scaled) workload for a benchmark with `cores` cores.
///
/// # Panics
///
/// Panics for [`BenchmarkKind::Custom`], which has no generator — custom
/// workloads come from trace files via [`Workload::from_trace`].
pub fn build_scaled(kind: BenchmarkKind, cores: usize) -> Workload {
    match kind {
        BenchmarkKind::Fluidanimate => fluidanimate::FluidanimateConfig::scaled().build(cores),
        BenchmarkKind::Lu => lu::LuConfig::scaled().build(cores),
        BenchmarkKind::Fft => fft::FftConfig::scaled().build(cores),
        BenchmarkKind::Radix => radix::RadixConfig::scaled().build(cores),
        BenchmarkKind::Barnes => barnes::BarnesConfig::scaled().build(cores),
        BenchmarkKind::KdTree => kdtree::KdTreeConfig::scaled().build(cores),
        BenchmarkKind::Custom => {
            panic!("custom workloads have no generator; replay them from a trace file")
        }
    }
}

/// Builds a miniature workload for a benchmark, suitable for unit tests and
/// Criterion benches where run time matters more than fidelity.
///
/// # Panics
///
/// Panics for [`BenchmarkKind::Custom`], which has no generator — custom
/// workloads come from trace files via [`Workload::from_trace`].
pub fn build_tiny(kind: BenchmarkKind, cores: usize) -> Workload {
    match kind {
        BenchmarkKind::Fluidanimate => fluidanimate::FluidanimateConfig::tiny().build(cores),
        BenchmarkKind::Lu => lu::LuConfig::tiny().build(cores),
        BenchmarkKind::Fft => fft::FftConfig::tiny().build(cores),
        BenchmarkKind::Radix => radix::RadixConfig::tiny().build(cores),
        BenchmarkKind::Barnes => barnes::BarnesConfig::tiny().build(cores),
        BenchmarkKind::KdTree => kdtree::KdTreeConfig::tiny().build(cores),
        BenchmarkKind::Custom => {
            panic!("custom workloads have no generator; replay them from a trace file")
        }
    }
}
