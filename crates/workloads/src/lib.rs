//! Synthetic workload generators for the six benchmarks of the study.
//!
//! The paper drives its simulator with SPLASH-2 (FFT, LU, radix, Barnes-Hut),
//! PARSEC (fluidanimate) and a parallel kD-tree builder running under a
//! full-system simulator. This crate substitutes trace generators that
//! reproduce each application's data-structure layout, sharing pattern, phase
//! structure and region annotations — the properties the paper's analysis
//! attributes every traffic-waste effect to (see `DESIGN.md` §1 for the
//! substitution rationale and §7 for the scaled default input sizes).
//!
//! Each generator produces a [`Workload`]: a [`tw_types::RegionTable`]
//! describing the software-supplied region, Flex and bypass annotations, and
//! one [`tw_types::TraceOp`] stream per core.
//!
//! # Example
//!
//! ```
//! use tw_workloads::{fft::FftConfig, Workload};
//!
//! let wl: Workload = FftConfig::scaled().build(16);
//! assert_eq!(wl.cores(), 16);
//! assert!(wl.total_mem_ops() > 10_000);
//! assert!(wl.regions.len() >= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barnes;
pub mod builder;
pub mod fft;
pub mod fluidanimate;
pub mod kdtree;
pub mod lu;
pub mod radix;
pub mod workload;

pub use builder::TraceBuilder;
pub use workload::{BenchmarkKind, Workload};

/// The error returned when asked to generate a benchmark kind that has no
/// fixed-input generator ([`BenchmarkKind::Custom`] comes from trace files,
/// [`BenchmarkKind::Synthesized`] from the seeded synthesizer).
fn no_generator(kind: BenchmarkKind) -> String {
    match kind {
        BenchmarkKind::Custom => {
            "custom workloads have no generator; replay them from a trace file".to_string()
        }
        BenchmarkKind::Synthesized => {
            "synthesized workloads have no fixed generator; build them from a seed \
             with the tw-scenarios synthesizer (or replay a saved trace)"
                .to_string()
        }
        other => unreachable!("{other} has a generator"),
    }
}

/// Builds the default (scaled) workload for a benchmark with `cores` cores.
///
/// The trace-only kinds ([`BenchmarkKind::Custom`],
/// [`BenchmarkKind::Synthesized`]) have no generator here and are reported as
/// an error rather than a panic, so callers resolving a kind from user input
/// can surface a diagnosable message.
pub fn build_scaled(kind: BenchmarkKind, cores: usize) -> Result<Workload, String> {
    Ok(match kind {
        BenchmarkKind::Fluidanimate => fluidanimate::FluidanimateConfig::scaled().build(cores),
        BenchmarkKind::Lu => lu::LuConfig::scaled().build(cores),
        BenchmarkKind::Fft => fft::FftConfig::scaled().build(cores),
        BenchmarkKind::Radix => radix::RadixConfig::scaled().build(cores),
        BenchmarkKind::Barnes => barnes::BarnesConfig::scaled().build(cores),
        BenchmarkKind::KdTree => kdtree::KdTreeConfig::scaled().build(cores),
        BenchmarkKind::Custom | BenchmarkKind::Synthesized => return Err(no_generator(kind)),
    })
}

/// Builds a miniature workload for a benchmark, suitable for unit tests and
/// Criterion benches where run time matters more than fidelity.
///
/// The trace-only kinds ([`BenchmarkKind::Custom`],
/// [`BenchmarkKind::Synthesized`]) have no generator here and are reported as
/// an error rather than a panic (see [`build_scaled`]).
pub fn build_tiny(kind: BenchmarkKind, cores: usize) -> Result<Workload, String> {
    Ok(match kind {
        BenchmarkKind::Fluidanimate => fluidanimate::FluidanimateConfig::tiny().build(cores),
        BenchmarkKind::Lu => lu::LuConfig::tiny().build(cores),
        BenchmarkKind::Fft => fft::FftConfig::tiny().build(cores),
        BenchmarkKind::Radix => radix::RadixConfig::tiny().build(cores),
        BenchmarkKind::Barnes => barnes::BarnesConfig::tiny().build(cores),
        BenchmarkKind::KdTree => kdtree::KdTreeConfig::tiny().build(cores),
        BenchmarkKind::Custom | BenchmarkKind::Synthesized => return Err(no_generator(kind)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_only_kinds_are_errors_not_panics() {
        for kind in [BenchmarkKind::Custom, BenchmarkKind::Synthesized] {
            let err = build_scaled(kind, 16).unwrap_err();
            assert!(err.contains("generator"), "{err}");
            assert!(build_tiny(kind, 16).is_err());
        }
        for kind in BenchmarkKind::ALL {
            assert!(build_tiny(kind, 16).is_ok(), "{kind} must generate");
        }
    }
}
