#!/usr/bin/env python3
"""Enforce the ops/sec throughput baseline.

Usage: compare_throughput.py BENCH_OUTPUT BASELINE_JSON [--tolerance 0.20]

BENCH_OUTPUT is the captured stdout of `cargo bench -p tw-bench --bench
ops_per_sec`, whose report lines carry a `thrpt <N> elem/s` column. Every
cell present in BASELINE_JSON must appear in the output and run at no less
than (1 - tolerance) times its baseline ops/sec; otherwise this script exits
non-zero and lists the offending cells.

Faster-than-baseline results never fail the check — refresh the baseline
(see its _comment field) when an intentional change moves the numbers.
"""

import argparse
import json
import re
import sys

LINE = re.compile(r"^(\S+)\s+.*thrpt\s+(\d+(?:\.\d+)?)\s+elem/s")


def parse_output(path):
    cells = {}
    with open(path) as fh:
        for line in fh:
            m = LINE.match(line.strip())
            if m:
                cells[m.group(1)] = float(m.group(2))
    return cells


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_output")
    ap.add_argument("baseline_json")
    ap.add_argument("--tolerance", type=float, default=0.20)
    args = ap.parse_args()

    with open(args.baseline_json) as fh:
        baseline = json.load(fh)["cells"]
    measured = parse_output(args.bench_output)

    failures = []
    for cell, base in sorted(baseline.items()):
        got = measured.get(cell)
        if got is None:
            failures.append(f"{cell}: missing from bench output")
            continue
        floor = base * (1.0 - args.tolerance)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"{cell}: {got:.0f} ops/s vs baseline {base:.0f} (floor {floor:.0f}) {verdict}")
        if got < floor:
            failures.append(
                f"{cell}: {got:.0f} ops/s is {100 * (1 - got / base):.1f}% below baseline {base:.0f}"
            )

    if failures:
        print("\nthroughput regression check FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(baseline)} cells within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
