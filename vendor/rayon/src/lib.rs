//! Minimal offline stand-in for the parts of `rayon 1` this workspace uses:
//! `slice.par_iter().map(f).collect::<Vec<_>>()` and `rayon::join`.
//!
//! Work distribution is a shared atomic cursor over the input slice drained
//! by `std::thread::scope` workers (one per available core, capped by the
//! item count), so uneven per-item cost — e.g. MESI cells taking much longer
//! than DeNovo cells in the experiment matrix — still load-balances.
//! Results are returned in input order.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

/// Everything a consumer needs in scope (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

fn worker_count(items: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(items)
        .max(1)
}

/// Maps `f` over `items` on a thread pool, preserving input order.
fn par_map_indexed<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: &(dyn Fn(&'a T) -> R + Sync),
) -> Vec<R> {
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut chunks: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                s.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for chunk in chunks.drain(..) {
        for (i, r) in chunk {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index produced exactly one result"))
        .collect()
}

/// Borrowing parallel-iterator entry point (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by the parallel iterator.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator, ready to collect.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map on the pool and collects results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromIterator<R>,
    {
        // The indexed runner needs `Fn(&T) -> R`; lifetimes line up because
        // the slice outlives the scope.
        par_map_indexed(self.items, &self.f).into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string() + "y");
        assert_eq!(a, 2);
        assert_eq!(b, "xy");
    }

    #[test]
    fn uneven_work_is_balanced() {
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|&x| {
                // Vastly uneven per-item cost.
                let spins = if x % 8 == 0 { 100_000 } else { 10 };
                (0..spins).fold(x, |acc, _| std::hint::black_box(acc.wrapping_add(1)))
            })
            .collect();
        assert_eq!(out.len(), 64);
    }
}
