//! Minimal offline stand-in for the parts of `criterion 0.5` this workspace
//! uses: `Criterion::bench_function`, benchmark groups (including
//! [`Throughput`] annotations), name filters on the command line, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark closure is timed over `sample_size`
//! samples after a short calibration pass that picks an iteration count
//! targeting a few milliseconds per sample. Only the per-iteration mean and
//! min are reported (plus elements/sec when a throughput is set) — no
//! statistics, no HTML output.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

/// Per-invocation timing state handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Whether the harness was invoked in test mode (`cargo bench -- --test`),
/// which runs every benchmark closure exactly once without timing it — the
/// CI smoke mode that keeps bench code compiling *and* running.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Name filters: like real criterion, any non-flag command-line argument
/// selects only the benchmarks whose label contains it as a substring
/// (`cargo bench -- ops_per_sec`). No filters means run everything.
fn selected(label: &str) -> bool {
    let mut any = false;
    for arg in std::env::args().skip(1) {
        if arg.starts_with('-') {
            continue;
        }
        any = true;
        if label.contains(&arg) {
            return true;
        }
    }
    !any
}

/// Per-benchmark work declaration, mirroring `criterion::Throughput`. When
/// set on a group, each report line additionally shows elements (or bytes)
/// per second computed from the fastest sample.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The closure processes this many logical elements per call.
    Elements(u64),
    /// The closure processes this many bytes per call.
    Bytes(u64),
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    if !selected(label) {
        return;
    }
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("Testing {label}: ok");
        return;
    }
    // Calibrate: grow the iteration count until one sample takes >= ~2 ms
    // (or we hit a cap, for very slow benchmarks).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4);
    }

    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    let samples = sample_size.max(1);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        best = best.min(b.elapsed);
    }
    let denom = (samples as u32) * (iters as u32).max(1);
    let mean = total / denom;
    let min = best / (iters as u32).max(1);
    let thrpt = throughput
        .map(|t| {
            let (n, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let per_sec = n as f64 / min.as_secs_f64().max(f64::MIN_POSITIVE);
            format!("   thrpt {per_sec:.0} {unit}")
        })
        .unwrap_or_default();
    println!(
        "{label:<40} mean {mean:>12.2?}   min {min:>12.2?}{thrpt}   ({samples} samples x {iters} iters)"
    );
}

/// The benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares how much work each closure call performs; subsequent
    /// benchmarks in the group report elements (or bytes) per second.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u64;
        c.bench_function("probe", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn throughput_annotation_runs_the_closure() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("t");
        g.sample_size(2).throughput(Throughput::Elements(7));
        let mut runs = 0u64;
        g.bench_function("probe", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut hit = false;
        group.bench_function("inner", |b| b.iter(|| hit = true));
        group.finish();
        assert!(hit);
    }
}
