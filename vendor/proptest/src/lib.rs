//! Minimal offline stand-in for the parts of `proptest 1` this workspace
//! uses: the `proptest!` macro, integer-range / tuple / `prop::collection::
//! vec` strategies, `any::<T>()`, `ProptestConfig`, and the `prop_assert*`
//! macros.
//!
//! Differences from the real crate: cases are sampled from a fixed
//! deterministic seed derived from the test name, there is **no shrinking**,
//! and `prop_assert*` panics immediately (which the test harness reports
//! like any assertion failure).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps debug-mode suite times sane
        // while still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 stream used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds a generator with a seed derived from `name` (typically the
    /// property function's name), so every property gets a distinct but
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for a type (`any::<bool>()` etc.).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// The size specification `prop::collection::vec` accepts: an exact length
/// or a half-open range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s with element strategy `S` and a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len)` — `len` may be a `usize` or a
    /// range of lengths.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span <= 1 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop` namespace of the real crate (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property, reporting the sampled case on
/// failure. (This shim panics immediately instead of returning an error.)
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { .. }`
/// becomes a `#[test]` that samples `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (
        config = $cfg:expr;
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..__cfg.cases {
                let ($($arg,)+) = ($( $crate::Strategy::sample(&($strat), &mut __rng), )+);
                $body
            }
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Sampled values stay inside their strategy's bounds.
        #[test]
        fn ranges_are_respected(x in 3u64..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        /// Vec lengths follow the size specification.
        #[test]
        fn vec_lengths(v in prop::collection::vec(0u8..5, 2..7), w in prop::collection::vec(any::<bool>(), 3)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Tuple strategies sample each component.
        #[test]
        fn tuples_work(pair in (any::<bool>(), 1u16..3)) {
            let (_b, n) = pair;
            prop_assert!(n == 1 || n == 2);
        }
    }
}
