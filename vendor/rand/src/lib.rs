//! Minimal offline stand-in for the parts of `rand 0.8` this workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`]
//! over integer ranges.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! and high quality, but **not** bit-compatible with upstream `StdRng`
//! (ChaCha12). Consumers in this workspace only rely on determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a range by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (`low..high` or `low..=high`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Commonly used generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // Avoid the all-zero state (unreachable from splitmix64, but be
            // explicit about the invariant xoshiro requires).
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform sample in `[0, bound)` via Lemire's multiply-shift reduction.
fn bounded<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64) - (self.start as u64);
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64) - (start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1u64..=3);
            assert!((1..=3).contains(&w));
            let u = rng.gen_range(0usize..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..1 << 32) == b.gen_range(0u64..1 << 32))
            .count();
        assert!(same < 4);
    }
}
