//! Cross-crate integration: every protocol on every benchmark produces a
//! structurally sound report.

use denovo_waste::{SimConfig, Simulator, TimeClass};
use tw_types::{MessageClass, ProtocolKind, SystemConfig};
use tw_workloads::{build_tiny, BenchmarkKind};

#[test]
fn every_report_is_internally_consistent() {
    for &bench in &BenchmarkKind::ALL {
        let workload = build_tiny(bench, 16).unwrap();
        workload.assert_well_formed();
        for &protocol in &ProtocolKind::ALL {
            let report = Simulator::new(SimConfig::new(protocol), &workload).run();

            // Traffic: every class total is non-negative and the sum matches
            // the grand total.
            let class_sum: f64 = MessageClass::ALL
                .iter()
                .map(|c| report.traffic.class_total(*c))
                .sum();
            assert!(
                (class_sum - report.traffic.total()).abs() < 1e-6,
                "{bench}/{protocol}: class totals {class_sum} != total {}",
                report.traffic.total()
            );
            assert!(report.traffic.waste_total() <= report.traffic.total() + 1e-9);

            // Time: the per-class breakdown never exceeds #cores × makespan.
            let budget = report.total_cycles * 16;
            assert!(
                report.time.total() <= budget,
                "{bench}/{protocol}: attributed time {} exceeds the budget {budget}",
                report.time.total()
            );
            assert!(report.time.get(TimeClass::Compute) > 0);

            // Waste: words fetched into the L1 must be at least the words
            // fetched from memory that were used (every used word reaches an
            // L1), and every report is non-empty for these workloads.
            assert!(
                report.l1_waste.total_words() > 0,
                "{bench}/{protocol}: no L1 words profiled"
            );
            assert!(
                report.mem_waste.total_words() > 0,
                "{bench}/{protocol}: no memory words profiled"
            );

            // DRAM was exercised and the row-hit rate is a valid fraction.
            assert!(report.dram_accesses > 0);
            assert!((0.0..=1.0).contains(&report.dram_row_hit_rate));
        }
    }
}

#[test]
fn inclusive_mesi_fetches_at_least_as_many_l2_words_as_denovo_variants() {
    // DeNovo's non-inclusive L2 plus write-validate means it never brings
    // *more* words into the L2 from memory than MESI does.
    for &bench in &[
        BenchmarkKind::Fft,
        BenchmarkKind::Radix,
        BenchmarkKind::Fluidanimate,
    ] {
        let workload = build_tiny(bench, 16).unwrap();
        let mesi = Simulator::new(SimConfig::new(ProtocolKind::Mesi), &workload).run();
        let opt = Simulator::new(SimConfig::new(ProtocolKind::DBypL2), &workload).run();
        assert!(
            opt.l2_waste.total_words() <= mesi.l2_waste.total_words(),
            "{bench}: DBypL2 fetched more L2 words ({}) than MESI ({})",
            opt.l2_waste.total_words(),
            mesi.l2_waste.total_words()
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let workload = build_tiny(BenchmarkKind::KdTree, 16).unwrap();
    let a = Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &workload).run();
    let b = Simulator::new(SimConfig::new(ProtocolKind::DBypFull), &workload).run();
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.traffic, b.traffic);
    assert_eq!(a.l1_waste, b.l1_waste);
    assert_eq!(a.mem_waste, b.mem_waste);
}

#[test]
fn alternative_system_configurations_are_respected() {
    // Shrinking the L2 must increase DRAM pressure; the simulator must accept
    // any validated configuration, not just Table 4.1.
    let workload = build_tiny(BenchmarkKind::Fft, 16).unwrap();
    let big = Simulator::new(SimConfig::new(ProtocolKind::Mesi), &workload).run();

    let mut small_sys = SystemConfig::default();
    small_sys.cache.l2_slice_bytes = 16 * 1024;
    small_sys.validate().unwrap();
    let small = Simulator::new(
        SimConfig::new(ProtocolKind::Mesi).with_system(small_sys),
        &workload,
    )
    .run();

    assert!(
        small.dram_accesses >= big.dram_accesses,
        "a 16x smaller L2 should not reduce DRAM accesses ({} vs {})",
        small.dram_accesses,
        big.dram_accesses
    );
}
