//! Integration test of the paper's headline claims at the tiny scale.
//!
//! The quantitative targets of the abstract (39.5 % traffic reduction,
//! 10.5 % execution-time reduction, 8.8 % residual waste) are checked in
//! `EXPERIMENTS.md` at the scaled profile via the release-mode experiments
//! harness; this debug-mode test checks that the *direction* of every
//! headline claim already holds on miniature inputs, so regressions in the
//! protocol implementations are caught by `cargo test --workspace`.

use denovo_waste::{ExperimentMatrix, ScaleProfile};
use tw_types::{MessageClass, ProtocolKind};
use tw_workloads::BenchmarkKind;

fn outcome() -> denovo_waste::RunOutcome {
    ExperimentMatrix::full(ScaleProfile::Tiny)
        .run()
        .expect("the tiny full matrix must run")
}

#[test]
fn headline_directions_hold_at_tiny_scale() {
    let out = outcome();
    let h = out
        .headline()
        .expect("full matrix has every headline protocol");

    // Abstract: the fully optimized protocol moves (much) less traffic than
    // MESI and than the prior best DeNovo configuration, and the baseline
    // DeNovo already beats MESI.
    assert!(
        h.dbypfull_traffic_vs_mesi < 0.95,
        "DBypFull should clearly reduce traffic vs MESI, got {:.3}",
        h.dbypfull_traffic_vs_mesi
    );
    assert!(
        h.denovo_traffic_vs_mesi < 1.0,
        "baseline DeNovo should reduce traffic vs MESI, got {:.3}",
        h.denovo_traffic_vs_mesi
    );
    assert!(
        h.dbypfull_traffic_vs_dflexl1 < 1.0,
        "DBypFull should reduce traffic vs DFlexL1, got {:.3}",
        h.dbypfull_traffic_vs_dflexl1
    );

    // §5.1: execution time does not regress (the paper reports a 10.5%
    // improvement at full scale).
    assert!(
        h.dbypfull_time_vs_mesi < 1.05,
        "DBypFull should not slow execution down, got {:.3}",
        h.dbypfull_time_vs_mesi
    );

    // §5.2.4: MESI spends a noticeable fraction of its traffic on protocol
    // overhead; DeNovo's residual waste fraction is small but non-zero.
    assert!(
        h.mesi_overhead_fraction > 0.03,
        "MESI should show protocol overhead, got {:.3}",
        h.mesi_overhead_fraction
    );
    assert!(
        h.dbypfull_waste_fraction < 0.35,
        "DBypFull residual waste should be modest, got {:.3}",
        h.dbypfull_waste_fraction
    );
}

#[test]
fn mmeml1_removes_store_resp_l2_waste() {
    // §5.2.2: MMemL1 eliminates the "Resp L2" store data for write misses
    // served from memory.
    let out = outcome();
    for &b in &[BenchmarkKind::Fft, BenchmarkKind::Radix] {
        let mesi = out.report(b, ProtocolKind::Mesi).unwrap();
        let mm = out.report(b, ProtocolKind::MMemL1).unwrap();
        let bucket =
            |r: &denovo_waste::SimReport, bucket| r.traffic.get(MessageClass::Store, bucket);
        let mesi_l2 = bucket(mesi, tw_types::TrafficBucket::RespL2Used)
            + bucket(mesi, tw_types::TrafficBucket::RespL2Waste);
        let mm_l2 = bucket(mm, tw_types::TrafficBucket::RespL2Used)
            + bucket(mm, tw_types::TrafficBucket::RespL2Waste);
        assert!(
            mm_l2 < mesi_l2 * 0.5 || mesi_l2 == 0.0,
            "{b}: MMemL1 store Resp-L2 traffic ({mm_l2:.0}) should collapse vs MESI ({mesi_l2:.0})"
        );
    }
}

#[test]
fn write_validate_eliminates_store_data_responses() {
    // §5.2.2: with write-validate at both levels, store transactions stop
    // fetching data entirely.
    let out = outcome();
    for &b in &[BenchmarkKind::Fft, BenchmarkKind::Fluidanimate] {
        let validate = out.report(b, ProtocolKind::DValidateL2).unwrap();
        let st_data = validate
            .traffic
            .get(MessageClass::Store, tw_types::TrafficBucket::RespL1Used)
            + validate
                .traffic
                .get(MessageClass::Store, tw_types::TrafficBucket::RespL1Waste)
            + validate
                .traffic
                .get(MessageClass::Store, tw_types::TrafficBucket::RespL2Used)
            + validate
                .traffic
                .get(MessageClass::Store, tw_types::TrafficBucket::RespL2Waste);
        assert_eq!(
            st_data, 0.0,
            "{b}: DValidateL2 should fetch no data on stores, found {st_data}"
        );
    }
}

#[test]
fn denovo_overhead_is_negligible_without_bloom_filters() {
    // §5.2.4: DeNovo's only overhead messages are NACKs (absent here); the
    // Bloom-filter copies of DBypFull are the one exception.
    let out = outcome();
    for &b in &BenchmarkKind::ALL {
        let r = out.report(b, ProtocolKind::DFlexL2).unwrap();
        let overhead = r.traffic.class_total(MessageClass::Overhead);
        // Registration displacement invalidations are the only residual
        // overhead and they are tiny.
        assert!(
            overhead < r.traffic.total() * 0.05,
            "{b}: DFlexL2 overhead {overhead:.0} of {:.0} is too large",
            r.traffic.total()
        );
    }
}

#[test]
fn flex_reduces_load_traffic_for_flex_benchmarks_only() {
    // §5.2.1: Flex helps Barnes-Hut and kD-tree (struct fields mixed with
    // unused words) and does nothing for LU. Known deviation (documented in
    // EXPERIMENTS.md): because this model sends one Flex response per line
    // rather than combining lines into one packet, the on-chip-only DFlexL1
    // configuration does not yet beat DeNovo on kD-tree; the gain appears
    // once Flex extends to the memory controller (DFlexL2), which is what is
    // asserted here.
    let out = outcome();
    // kD-tree: Flex + bypass together cut load traffic sharply.
    let kd_base = out
        .report(BenchmarkKind::KdTree, ProtocolKind::DeNovo)
        .unwrap()
        .traffic
        .class_total(MessageClass::Load);
    let kd_opt = out
        .report(BenchmarkKind::KdTree, ProtocolKind::DBypL2)
        .unwrap()
        .traffic
        .class_total(MessageClass::Load);
    assert!(
        kd_opt < kd_base,
        "kD-tree: Flex+bypass should reduce load traffic ({kd_opt:.0} vs {kd_base:.0})"
    );
    // Barnes-Hut: Flex must not inflate load traffic even at the tiny scale
    // (at the scaled profile it is a clear reduction, see EXPERIMENTS.md).
    let ba_base = out
        .report(BenchmarkKind::Barnes, ProtocolKind::DeNovo)
        .unwrap()
        .traffic
        .class_total(MessageClass::Load);
    let ba_flex = out
        .report(BenchmarkKind::Barnes, ProtocolKind::DFlexL2)
        .unwrap()
        .traffic
        .class_total(MessageClass::Load);
    assert!(
        ba_flex <= ba_base * 1.05,
        "barnes: Flex should not inflate load traffic ({ba_flex:.0} vs {ba_base:.0})"
    );
    let lu_base = out
        .report(BenchmarkKind::Lu, ProtocolKind::DeNovo)
        .unwrap()
        .traffic
        .class_total(MessageClass::Load);
    let lu_flex = out
        .report(BenchmarkKind::Lu, ProtocolKind::DFlexL1)
        .unwrap()
        .traffic
        .class_total(MessageClass::Load);
    assert!(
        (lu_flex - lu_base).abs() < lu_base * 0.02,
        "LU has no communication regions, Flex should not change its load traffic"
    );
}
