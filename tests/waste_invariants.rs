//! Property-based integration tests of the waste-characterization invariants
//! (paper §4.1) on randomized synthetic traces.

use denovo_waste::{SimConfig, Simulator};
use proptest::prelude::*;
use tw_types::{Addr, MemKind, ProtocolKind, RegionId, RegionInfo, RegionTable, TraceOp};
use tw_workloads::{BenchmarkKind, Workload};

/// Builds a 16-core workload from a per-core list of (is_store, slot) pairs
/// over a small shared array, with a barrier between two phases.
fn synthetic_workload(ops: Vec<Vec<(bool, u16)>>) -> Workload {
    let mut regions = RegionTable::new();
    let base = 0x10_0000u64;
    regions.insert(RegionInfo::plain(
        RegionId(1),
        "shared",
        Addr::new(base),
        1 << 20,
    ));
    let traces = ops
        .into_iter()
        .map(|core_ops| {
            let mut trace = Vec::new();
            let half = core_ops.len() / 2;
            for (i, (is_store, slot)) in core_ops.into_iter().enumerate() {
                if i == half {
                    trace.push(TraceOp::barrier(0));
                }
                let addr = Addr::new(base + slot as u64 * 4);
                trace.push(TraceOp::Mem {
                    kind: if is_store {
                        MemKind::Store
                    } else {
                        MemKind::Load
                    },
                    addr,
                    region: RegionId(1),
                });
            }
            if !trace.iter().any(|op| matches!(op, TraceOp::Barrier { .. })) {
                trace.insert(0, TraceOp::barrier(0));
            }
            trace.push(TraceOp::barrier(1));
            trace
        })
        .collect();
    Workload {
        kind: BenchmarkKind::Lu,
        input: "synthetic".into(),
        regions,
        traces,
    }
}

fn core_ops() -> impl Strategy<Value = Vec<(bool, u16)>> {
    prop::collection::vec((any::<bool>(), 0u16..4096), 2..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every word fetched from memory is eventually classified (no word is
    /// lost by the profiler), and the used words never exceed the program's
    /// loads — for both protocol families, on arbitrary access patterns.
    #[test]
    fn waste_accounting_is_conservative(ops in prop::collection::vec(core_ops(), 16)) {
        let loads: u64 = ops
            .iter()
            .flatten()
            .filter(|(is_store, _)| !is_store)
            .count() as u64;
        let workload = synthetic_workload(ops);
        workload.assert_well_formed();

        for protocol in [ProtocolKind::Mesi, ProtocolKind::DBypFull] {
            let report = Simulator::new(SimConfig::new(protocol), &workload).run();
            let mem = &report.mem_waste;
            let used = mem.words(tw_profiler::WasteCategory::Used);
            prop_assert!(
                used <= loads,
                "{protocol}: {used} used memory words but the program only issued {loads} loads"
            );
            // Traffic ledger sanity: waste never exceeds the total.
            prop_assert!(report.traffic.waste_total() <= report.traffic.total() + 1e-9);
            // Time attribution is non-negative and bounded by cores x makespan.
            prop_assert!(report.time.total() <= report.total_cycles * 16);
        }
    }

    /// MESI and DeNovo agree on how many words the *program* uses: the Used
    /// word count at the L1 level is protocol-independent for loads that hit
    /// fetched data, so the two protocols may differ only in wasted words,
    /// never by manufacturing extra used words beyond the issued loads.
    #[test]
    fn used_words_never_exceed_issued_loads(ops in prop::collection::vec(core_ops(), 16)) {
        let loads: u64 = ops
            .iter()
            .flatten()
            .filter(|(is_store, _)| !is_store)
            .count() as u64;
        let workload = synthetic_workload(ops);
        for protocol in [ProtocolKind::Mesi, ProtocolKind::DeNovo, ProtocolKind::DFlexL2] {
            let report = Simulator::new(SimConfig::new(protocol), &workload).run();
            let l1_used = report.l1_waste.words(tw_profiler::WasteCategory::Used);
            prop_assert!(
                l1_used <= loads,
                "{protocol}: {l1_used} used L1 words exceeds {loads} issued loads"
            );
        }
    }
}
